package nal

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestParseBasicForms(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical String form; "" means identical to src
	}{
		{"NTP says TimeNow < @2026-03-19", ""},
		{"A speaksfor B", ""},
		{"A speaksfor B on TimeNow", ""},
		{"TypeChecker says isTypeSafe(hash:ab12)", ""},
		{"Nexus says /proc/ipd/30 speaksfor IPCAnalyzer", ""},
		{"/proc/ipd/30 says not hasPath(/proc/ipd/12, Filesystem)", ""},
		{"false", ""},
		{"true", ""},
		{"a and b", ""},
		{"a or b", ""},
		{"a => b", ""},
		{"not a", ""},
		{"a and b or c", "(a and b) or c"},
		{"a => b => c", "a => (b => c)"},
		{"Owner says (TimeNow < @2026-03-19)", "Owner says TimeNow < @2026-03-19"},
		{"?S says openFile(\"/dir/file\")", ""},
		{"kernel.process.23 says ready", ""},
		{"key:ab12 says x = 1", ""},
		{"FS says /proc/ipd/6 speaksfor FS./dir/file", ""},
		{"A says B says c", ""},
		{"quota(alice) <= 80", ""},
		{"member(alice, [alice, bob])", ""},
		{"A says Valid(s) => s", ""},
		{"(A says Valid(s)) => s", "A says Valid(s) => s"},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		want := c.want
		if want == "" {
			want = c.src
		}
		if got := f.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"says",
		"A says",
		"A speaksfor",
		"(a",
		"a and",
		"A.b(x)",   // dotted predicate head
		"\"str\"",  // bare term is not a formula
		"A says B", // dangling principal? B is nullary pred — OK actually
		"?",
		"@",
		"A < ",
		"x = @20x6",
	}
	for _, src := range bad {
		if src == "A says B" {
			continue // valid: B parses as a nullary predicate
		}
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error, got none", src)
		}
	}
}

func TestRoundTripCanonical(t *testing.T) {
	// String() output must reparse to an Equal formula.
	srcs := []string{
		"Nexus says IPC.5 speaksfor /proc/ipd/7",
		"Filesystem says NTP speaksfor Filesystem on TimeNow",
		"(a and b) or (not c => false)",
		"SafetyCertifier says safe(?X)",
		"A says (b or c) and d",
		"x != [1, 2, \"three\", @2026-01-01]",
	}
	for _, src := range srcs {
		f1 := MustParse(src)
		f2, err := Parse(f1.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", f1.String(), src, err)
		}
		if !f1.Equal(f2) {
			t.Errorf("round trip changed %q: %q vs %q", src, f1, f2)
		}
	}
}

func TestPrincipalHierarchy(t *testing.T) {
	tpm := Key("ek0")
	kern := SubOf(tpm, "nexus")
	proc := SubChain(kern, "ipd", "23")
	if got := proc.String(); got != "key:ek0.nexus.ipd.23" {
		t.Fatalf("SubChain = %q", got)
	}
	if !IsAncestor(tpm, proc) || !IsAncestor(kern, proc) || !IsAncestor(proc, proc) {
		t.Error("IsAncestor should hold along the chain")
	}
	if IsAncestor(proc, kern) {
		t.Error("IsAncestor must not hold upward")
	}
	if !RootOf(proc).EqualPrin(tpm) {
		t.Errorf("RootOf = %v, want %v", RootOf(proc), tpm)
	}
	if PrinDepth(proc) != 3 {
		t.Errorf("PrinDepth = %d, want 3", PrinDepth(proc))
	}
	back, err := ParsePrincipal(proc.String())
	if err != nil || !back.EqualPrin(proc) {
		t.Errorf("principal round trip failed: %v, %v", back, err)
	}
}

func TestSubstitution(t *testing.T) {
	goal := MustParse("?S says openFile(?F) and SafetyCertifier says safe(?S)")
	sub := Subst{
		"S": PrinTerm{P: MustPrincipal("kernel.ipd.12")},
		"F": Str("/dir/file"),
	}
	got := sub.Apply(goal)
	want := MustParse(`kernel.ipd.12 says openFile("/dir/file") and SafetyCertifier says safe(kernel.ipd.12)`)
	if !got.Equal(want) {
		t.Errorf("Apply = %q, want %q", got, want)
	}
	if !Ground(got) {
		t.Error("substituted goal should be ground")
	}
	if Ground(goal) {
		t.Error("goal with variables must not be ground")
	}
	if vs := Vars(goal); len(vs) != 2 || vs[0] != "S" || vs[1] != "F" {
		t.Errorf("Vars = %v", vs)
	}
}

func TestPatternMatches(t *testing.T) {
	pat := Pattern{Pred: "TimeNow"}
	if !pat.Matches(MustParse("TimeNow < @2026-03-19")) {
		t.Error("pattern should match comparison with matching atom")
	}
	if pat.Matches(MustParse("Other < @2026-03-19")) {
		t.Error("pattern must not match different atom")
	}
	pat2 := Pattern{Pred: "safe"}
	if !pat2.Matches(MustParse("safe(x)")) {
		t.Error("pattern should match predicate")
	}
	if !pat2.Matches(MustParse("safe(x) and safe(y)")) {
		t.Error("pattern should match conjunction of matches")
	}
	if pat2.Matches(MustParse("safe(x) or safe(y)")) {
		t.Error("pattern must not match disjunction")
	}
}

func TestCompareTerms(t *testing.T) {
	d1 := Time{T: time.Date(2026, 3, 18, 0, 0, 0, 0, time.UTC)}
	d2 := Time{T: time.Date(2026, 3, 19, 0, 0, 0, 0, time.UTC)}
	if sign, ok := CompareTerms(d1, d2); !ok || sign >= 0 {
		t.Errorf("CompareTerms(times) = %d, %v", sign, ok)
	}
	if _, ok := CompareTerms(Int(1), Str("1")); ok {
		t.Error("cross-kind comparison must be incomparable")
	}
	if sign, ok := CompareTerms(Int(5), Int(5)); !ok || sign != 0 {
		t.Errorf("CompareTerms(5,5) = %d, %v", sign, ok)
	}
	for op, want := range map[CompareOp]bool{OpLT: true, OpLE: true, OpEQ: false, OpNE: true, OpGE: false, OpGT: false} {
		if got := op.Eval(-1); got != want {
			t.Errorf("Eval(%v, -1) = %v, want %v", op, got, want)
		}
	}
}

func TestConjHelpers(t *testing.T) {
	fs := []Formula{MustParse("a"), MustParse("b"), MustParse("c")}
	c := Conj(fs...)
	if got := c.String(); got != "a and (b and c)" {
		t.Errorf("Conj = %q", got)
	}
	parts := Conjuncts(c)
	if len(parts) != 3 {
		t.Fatalf("Conjuncts = %d parts", len(parts))
	}
	if _, ok := Conj().(TrueF); !ok {
		t.Error("empty Conj should be true")
	}
	if !Conj(fs[0]).Equal(fs[0]) {
		t.Error("singleton Conj should be identity")
	}
}

func TestSaysWrapIdempotent(t *testing.T) {
	p := Name("A")
	inner := MustParse("A says s")
	if got := SaysWrap(p, inner); !got.Equal(inner) {
		t.Errorf("SaysWrap should collapse A says A says s, got %q", got)
	}
	other := MustParse("B says s")
	if got := SaysWrap(p, other); got.String() != "A says B says s" {
		t.Errorf("SaysWrap = %q", got)
	}
}

// genFormula builds a random formula from a seed; used for the quick
// round-trip property.
func genFormula(seed int64, depth int) Formula {
	atoms := []string{"a", "b", "safe", "ready", "TimeNow"}
	prins := []string{"A", "B", "NTP", "kernel.ipd.7", "key:ab12"}
	pick := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		v := int((seed >> 33) % int64(n))
		if v < 0 {
			v += n
		}
		return v
	}
	if depth <= 0 {
		switch pick(3) {
		case 0:
			return Pred{Name: atoms[pick(len(atoms))]}
		case 1:
			return Pred{Name: "p", Args: []Term{Int(int64(pick(100))), Str("s")}}
		default:
			return Compare{Op: CompareOp(pick(6)), L: Atom("x"), R: Int(int64(pick(50)))}
		}
	}
	switch pick(7) {
	case 0:
		return Says{P: MustPrincipal(prins[pick(len(prins))]), F: genFormula(seed, depth-1)}
	case 1:
		sf := SpeaksFor{A: MustPrincipal(prins[pick(len(prins))]), B: MustPrincipal(prins[pick(len(prins))])}
		if pick(2) == 0 {
			sf.On = &Pattern{Pred: atoms[pick(len(atoms))]}
		}
		return sf
	case 2:
		return Not{F: genFormula(seed, depth-1)}
	case 3:
		return And{L: genFormula(seed, depth-1), R: genFormula(seed+1, depth-1)}
	case 4:
		return Or{L: genFormula(seed, depth-1), R: genFormula(seed+1, depth-1)}
	case 5:
		return Implies{L: genFormula(seed, depth-1), R: genFormula(seed+1, depth-1)}
	default:
		return genFormula(seed+7, depth-1)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	// Property: for arbitrary formulas, Parse(f.String()) is Equal to f.
	prop := func(seed int64, d uint8) bool {
		f := genFormula(seed, int(d%4))
		g, err := Parse(f.String())
		if err != nil {
			t.Logf("parse error on %q: %v", f, err)
			return false
		}
		return f.Equal(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualReflexiveAndStable(t *testing.T) {
	prop := func(seed int64, d uint8) bool {
		f := genFormula(seed, int(d%4))
		g := genFormula(seed, int(d%4)) // same seed → same formula
		return f.Equal(f) && f.Equal(g) && f.String() == g.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"\"abc", "a ! b", "a # b", "?", "@ x"} {
		if _, err := lex(src); err == nil && !strings.Contains(src, "#") {
			t.Errorf("lex(%q): expected error", src)
		}
	}
}

// Package nal implements the Nexus Authorization Logic (NAL), the
// constructive logic of belief used by logical attestation (Sirer et al.,
// SOSP 2011; Schneider, Walsh, Sirer, TISSEC 2011).
//
// NAL formulas attribute statements to principals. The central modality is
// "P says S", read as "S is in the worldview of P". Delegation between
// principals is expressed with "A speaksfor B" (every statement of A is
// attributed to B) and the scoped variant "A speaksfor B on pat", which
// restricts the delegation to statements matching the pattern pat.
//
// Principals are hierarchical: A.tag is a subprincipal of A, and A speaksfor
// A.tag axiomatically. Key and hash principals name entities by their
// cryptographic identity.
//
// The package provides the abstract syntax (Term, Principal, Formula), a
// parser for a concrete textual syntax (Parse, ParsePrincipal, ParseTerm),
// structural equality, substitution of guard variables ("?X"), and pattern
// matching used by scoped delegation. Proof objects and the proof checker
// live in the subpackage nal/proof.
package nal

package nal

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Term is a first-order term appearing as a predicate argument or on either
// side of a comparison. Terms are immutable values.
type Term interface {
	fmt.Stringer
	// EqualTerm reports structural equality.
	EqualTerm(Term) bool
	isTerm()
}

// Str is a string constant term, written "like this" in the concrete syntax.
type Str string

// Int is an integer constant term.
type Int int64

// Time is a timestamp term, written as an RFC 3339 date or date-time prefixed
// with '@' in the concrete syntax (e.g. @2026-03-19).
type Time struct{ T time.Time }

// Atom is a symbolic constant, such as TimeNow, /proc/ipd/12, or alice.
// Atoms have no interpretation inside the logic; authorities and labeling
// functions give them meaning.
type Atom string

// Var is a guard variable, written ?X in the concrete syntax. Goal formulas
// contain variables that the guard instantiates (e.g. with the subject of the
// access) before demanding a proof; proofs themselves must be ground.
type Var string

// PrinTerm embeds a principal in term position, so that predicates may speak
// about principals (e.g. hasPath(/proc/ipd/12, Filesystem) names processes).
type PrinTerm struct{ P Principal }

// TermList is a finite list term, written [t1, t2, ...].
type TermList []Term

// Func is an uninterpreted function application in term position, such as
// quota(alice). Like predicate symbols, function symbols carry no built-in
// meaning; authorities evaluate them.
type Func struct {
	Name string
	Args []Term
}

func (Str) isTerm()      {}
func (Int) isTerm()      {}
func (Time) isTerm()     {}
func (Atom) isTerm()     {}
func (Var) isTerm()      {}
func (PrinTerm) isTerm() {}
func (TermList) isTerm() {}
func (Func) isTerm()     {}

func (f Func) String() string { return string(appendTerm(nil, f)) }

func (f Func) EqualTerm(o Term) bool {
	v, ok := o.(Func)
	if !ok || v.Name != f.Name || len(v.Args) != len(f.Args) {
		return false
	}
	for i := range f.Args {
		if !f.Args[i].EqualTerm(v.Args[i]) {
			return false
		}
	}
	return true
}

func (s Str) String() string  { return strconv.Quote(string(s)) }
func (i Int) String() string  { return strconv.FormatInt(int64(i), 10) }
func (a Atom) String() string { return string(a) }
func (v Var) String() string  { return "?" + string(v) }

// Time renders as the short date form only when that form reparses to the
// same instant (UTC-offset midnight with no sub-second part); otherwise RFC
// 3339 with nanoseconds. See appendTimeValue in canon.go.
func (t Time) String() string { return string(appendTerm(nil, t)) }

func (p PrinTerm) String() string { return p.P.String() }

func (l TermList) String() string { return string(appendTerm(nil, l)) }

func (s Str) EqualTerm(o Term) bool { v, ok := o.(Str); return ok && v == s }
func (i Int) EqualTerm(o Term) bool { v, ok := o.(Int); return ok && v == i }
func (a Atom) EqualTerm(o Term) bool {
	v, ok := o.(Atom)
	return ok && v == a
}
func (v Var) EqualTerm(o Term) bool { w, ok := o.(Var); return ok && w == v }

func (t Time) EqualTerm(o Term) bool {
	v, ok := o.(Time)
	return ok && v.T.Equal(t.T)
}

func (p PrinTerm) EqualTerm(o Term) bool {
	v, ok := o.(PrinTerm)
	return ok && v.P.EqualPrin(p.P)
}

func (l TermList) EqualTerm(o Term) bool {
	v, ok := o.(TermList)
	if !ok || len(v) != len(l) {
		return false
	}
	for i := range l {
		if !l[i].EqualTerm(v[i]) {
			return false
		}
	}
	return true
}

// CompareTerms orders two ground terms of the same kind. It returns the sign
// of l-r and false if the terms are incomparable (different kinds, or kinds
// without an order). Guards and embedded authorities use this to evaluate
// comparison formulas such as TimeNow < @2026-03-19 after the left side has
// been replaced with a concrete value.
func CompareTerms(l, r Term) (int, bool) {
	switch a := l.(type) {
	case Int:
		if b, ok := r.(Int); ok {
			switch {
			case a < b:
				return -1, true
			case a > b:
				return 1, true
			}
			return 0, true
		}
	case Str:
		if b, ok := r.(Str); ok {
			return strings.Compare(string(a), string(b)), true
		}
	case Time:
		if b, ok := r.(Time); ok {
			switch {
			case a.T.Before(b.T):
				return -1, true
			case a.T.After(b.T):
				return 1, true
			}
			return 0, true
		}
	case Atom:
		if b, ok := r.(Atom); ok {
			return strings.Compare(string(a), string(b)), true
		}
	}
	return 0, false
}

// SortTerms sorts a slice of terms by their canonical string form, giving a
// deterministic order for externalization and hashing.
func SortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].String() < ts[j].String() })
}

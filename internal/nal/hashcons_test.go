package nal

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func mustID(t *testing.T, src string) FormulaID {
	t.Helper()
	id, ok := IDOf(MustParse(src))
	if !ok {
		t.Fatalf("IDOf(%q) hit the cons cap", src)
	}
	return id
}

func TestIDOfEqualityClasses(t *testing.T) {
	cases := []string{
		"true", "false",
		"wantsAccess",
		"isTypeSafe(hash:ab12)",
		"alice says openFile(\"/dir/file\")",
		"key:ab12 speaksfor alice on TimeNow",
		"a and b or not c => d",
		"quota(alice) <= 80",
		"[1, 2, 3] = [1, 2, 3]",
		"p says (q says r)",
		"?S says wantsAccess(?O)",
	}
	for _, src := range cases {
		id1 := mustID(t, src)
		id2 := mustID(t, src) // independently parsed AST, same class
		if id1 != id2 {
			t.Errorf("%q: two parses got different IDs %d, %d", src, id1, id2)
		}
		if got := FormulaOfID(id1); !got.Equal(MustParse(src)) {
			t.Errorf("%q: FormulaOfID returned %q", src, got)
		}
		if want := Ground(MustParse(src)); GroundID(id1) != want {
			t.Errorf("%q: GroundID = %v, want %v", src, GroundID(id1), want)
		}
	}
	// Distinct formulas get distinct IDs.
	seen := map[FormulaID]string{}
	for _, src := range cases {
		id := mustID(t, src)
		if prev, dup := seen[id]; dup {
			t.Errorf("%q and %q share ID %d", src, prev, id)
		}
		seen[id] = src
	}
}

func TestIDOfTimeInstant(t *testing.T) {
	utc := Time{T: time.Date(2026, 3, 19, 15, 0, 0, 0, time.UTC)}
	est := Time{T: utc.T.In(time.FixedZone("EST", -5*3600))}
	a, ok1 := IDOfTerm(utc)
	b, ok2 := IDOfTerm(est)
	if !ok1 || !ok2 {
		t.Fatal("cons cap hit")
	}
	if a != b {
		t.Errorf("instant-equal Times got different IDs %d, %d", a, b)
	}
}

func TestConsConstructorsMatchIDOf(t *testing.T) {
	p, _ := IDOfPrin(Name("alice"))
	body := mustID(t, "wantsAccess")
	says, ok := ConsSays(p, body)
	if !ok {
		t.Fatal("cons cap hit")
	}
	if want := mustID(t, "alice says wantsAccess"); says != want {
		t.Errorf("ConsSays = %d, IDOf = %d", says, want)
	}
	l, r := mustID(t, "a"), mustID(t, "b")
	and, _ := ConsAnd(l, r)
	if want := mustID(t, "a and b"); and != want {
		t.Errorf("ConsAnd = %d, IDOf = %d", and, want)
	}
	not, _ := ConsNot(l)
	if want := mustID(t, "not a"); not != want {
		t.Errorf("ConsNot = %d, IDOf = %d", not, want)
	}
	a, _ := IDOfPrin(Name("a"))
	b, _ := IDOfPrin(SubOf(Name("a"), "t"))
	sf, _ := ConsSpeaksFor(a, b, "", false)
	if want := mustID(t, "a speaksfor a.t"); sf != want {
		t.Errorf("ConsSpeaksFor = %d, IDOf = %d", sf, want)
	}
	if !IsAncestorID(a, b) || IsAncestorID(b, a) {
		t.Error("IsAncestorID disagrees with the subprincipal order")
	}
}

func TestPatternMatchesID(t *testing.T) {
	for _, tc := range []struct {
		pred, formula string
		want          bool
	}{
		{"wantsAccess", "wantsAccess(\"x\")", true},
		{"wantsAccess", "other(\"x\")", false},
		{"TimeNow", "TimeNow < @2026-03-19", true},
		{"TimeNow", "wantsAccess and TimeNow < @2026-03-19", false},
		{"p", "p and p(\"x\")", true},
	} {
		id := mustID(t, tc.formula)
		if got := PatternMatchesID(tc.pred, id); got != tc.want {
			t.Errorf("PatternMatchesID(%q, %q) = %v, want %v", tc.pred, tc.formula, got, tc.want)
		}
		want := Pattern{Pred: tc.pred}.Matches(MustParse(tc.formula))
		if want != tc.want {
			t.Errorf("test vector disagrees with Pattern.Matches for %q", tc.formula)
		}
	}
}

func TestConsConcurrent(t *testing.T) {
	const goroutines = 8
	var wg sync.WaitGroup
	ids := make([][]FormulaID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f := MustParse(fmt.Sprintf("conc%d says p(%d)", i%17, i%29))
				id, ok := IDOf(f)
				if !ok {
					t.Error("cons cap hit")
					return
				}
				ids[g] = append(ids[g], id)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range ids[0] {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d got ID %d for item %d, goroutine 0 got %d",
					g, ids[g][i], i, ids[0][i])
			}
		}
	}
}

func TestConsCapDegradesSoftly(t *testing.T) {
	id := mustID(t, "true") // interned before the freeze
	SetConsLimit(0)         // freeze: existing handles stay valid, growth stops
	defer SetConsLimit(DefaultConsLimit)

	if _, ok := IDOf(MustParse("neverSeenBefore(\"cap-test\", 12345)")); ok {
		t.Error("cons beyond the cap should report ok=false")
	}
	// Existing values still resolve and still intern-hit.
	if _, ok := FormulaOfID(id).(TrueF); !ok {
		t.Error("existing handle broken after cap freeze")
	}
	if again := mustID(t, "true"); again != id {
		t.Errorf("frozen table returned a different ID for an existing value: %d vs %d", again, id)
	}
}

package nal

import (
	"testing"
	"time"
)

// wireRoundTrip pushes f through a fresh encoder/decoder pair and returns
// the decoded handle.
func wireRoundTrip(t *testing.T, f Formula) FormulaID {
	t.Helper()
	enc := NewWireEncoder()
	buf, err := enc.AppendFormula(nil, f)
	if err != nil {
		t.Fatalf("encode %v: %v", f, err)
	}
	dec := NewWireDecoder()
	id, n, err := dec.DecodeFormula(buf)
	if err != nil {
		t.Fatalf("decode %v: %v", f, err)
	}
	if n != len(buf) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
	}
	return id
}

func TestWireRoundTrip(t *testing.T) {
	for _, src := range fuzzSeeds {
		f := MustParse(src)
		id := wireRoundTrip(t, f)
		if !FormulaOfID(id).Equal(f) {
			t.Errorf("%q: wire round-trip changed the formula: got %v", src, FormulaOfID(id))
		}
		want, ok := IDOf(f)
		if !ok {
			t.Fatalf("cons saturated in test")
		}
		if id != want {
			t.Errorf("%q: decode interned into a different equality class (%d != %d)", src, id, want)
		}
	}
}

func TestWireTimeZonePreservesInstant(t *testing.T) {
	loc := time.FixedZone("X", 3600)
	f := Compare{Op: OpLT, L: Atom("TimeNow"), R: Time{T: time.Date(2026, 3, 19, 1, 2, 3, 500, loc)}}
	id := wireRoundTrip(t, f)
	if !FormulaOfID(id).Equal(f) {
		t.Fatalf("instant not preserved: %v vs %v", FormulaOfID(id), f)
	}
}

// TestWireBackref: the second send of the same formula is a bare root
// reference, and both decodes yield the same handle.
func TestWireBackref(t *testing.T) {
	f := MustParse("key:ab12 says mayArchive(alice) and NTP says TimeNow < @2026-03-19")
	enc := NewWireEncoder()
	cold, err := enc.AppendFormula(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := enc.AppendFormula(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) >= len(cold) {
		t.Fatalf("warm message (%dB) not smaller than cold (%dB)", len(warm), len(cold))
	}
	dec := NewWireDecoder()
	id1, _, err := dec.DecodeFormula(cold)
	if err != nil {
		t.Fatal(err)
	}
	id2, n, err := dec.DecodeFormula(warm)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 || n != len(warm) {
		t.Fatalf("warm decode: id %d vs %d, consumed %d of %d", id2, id1, n, len(warm))
	}
}

// TestWireWarmDecodeZeroAlloc pins the acceptance criterion: ingress decode
// of an already-seen formula is an intern lookup that performs zero parsing
// allocations.
func TestWireWarmDecodeZeroAlloc(t *testing.T) {
	f := MustParse("key:deadbeef.boot0.ipd.7 says requested(read, \"/archive/walls\") and x < 42")
	enc := NewWireEncoder()
	cold, err := enc.AppendFormula(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := enc.AppendFormula(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewWireDecoder()
	want, _, err := dec.DecodeFormula(cold)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		id, _, err := dec.DecodeFormula(warm)
		if err != nil || id != want {
			t.Fatalf("warm decode: id=%d err=%v", id, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm wire decode allocates: %v allocs/op, want 0", allocs)
	}
}

// TestWireSharedSubstructure: a formula sharing subtrees with an
// already-sent one defines only the genuinely new nodes.
func TestWireSharedSubstructure(t *testing.T) {
	a := MustParse("key:ab12 says mayArchive(alice)")
	b := MustParse("key:ab12 says mayArchive(alice) and key:ab12 says active(alice)")
	enc := NewWireEncoder()
	dec := NewWireDecoder()
	bufA, err := enc.AppendFormula(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dec.DecodeFormula(bufA); err != nil {
		t.Fatal(err)
	}
	encFresh := NewWireEncoder()
	fresh, err := encFresh.AppendFormula(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := enc.AppendFormula(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(incr) >= len(fresh) {
		t.Fatalf("incremental send (%dB) not smaller than fresh send (%dB)", len(incr), len(fresh))
	}
	idB, _, err := dec.DecodeFormula(incr)
	if err != nil {
		t.Fatal(err)
	}
	if !FormulaOfID(idB).Equal(b) {
		t.Fatalf("incremental decode changed the formula")
	}
}

func TestWirePrinRoundTrip(t *testing.T) {
	for _, src := range []string{"NTP", "key:ab12", "hash:590fb6", "kernel.ipd.12", "a.b.c"} {
		p := MustPrincipal(src)
		enc := NewWireEncoder()
		buf, err := enc.AppendPrin(nil, p)
		if err != nil {
			t.Fatal(err)
		}
		dec := NewWireDecoder()
		id, n, err := dec.DecodePrin(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("%q: decode: %v (consumed %d/%d)", src, err, n, len(buf))
		}
		if !PrinOfID(id).EqualPrin(p) {
			t.Errorf("%q: round-trip changed the principal", src)
		}
	}
}

// TestWireDecodeMalformed: truncations and corruptions of a valid message
// must fail cleanly, never panic, and leave the decoder usable.
func TestWireDecodeMalformed(t *testing.T) {
	f := MustParse("key:ab12 says mayArchive(alice) or size = 3")
	enc := NewWireEncoder()
	buf, err := enc.AppendFormula(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		dec := NewWireDecoder()
		if _, _, err := dec.DecodeFormula(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// Forward references are rejected.
	dec := NewWireDecoder()
	if _, _, err := dec.DecodeFormula([]byte{wopRoot, 1}); err == nil {
		t.Fatal("dangling root reference decoded successfully")
	}
	// A failed message must not poison the decoder for the next one.
	if _, _, err := dec.DecodeFormula(buf); err != nil {
		t.Fatalf("decoder unusable after failed message: %v", err)
	}
}

// FuzzWireFormula is the differential round-trip fuzzer of the wire codec
// against the text parser: any formula the parser accepts must encode,
// decode into the same hash-cons equality class, and decode again (warm)
// to the identical handle. Arbitrary bytes through the decoder must fail
// without panicking.
func FuzzWireFormula(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			return
		}
		// Decoder robustness on arbitrary bytes.
		rd := NewWireDecoder()
		rd.DecodeFormula([]byte(src))
		rd.DecodePrin([]byte(src))

		f1, err := Parse(src)
		if err != nil {
			return
		}
		enc := NewWireEncoder()
		buf, err := enc.AppendFormula(nil, f1)
		if err != nil {
			return // cons table saturated: soft-fail path
		}
		dec := NewWireDecoder()
		id, n, err := dec.DecodeFormula(buf)
		if err != nil {
			t.Fatalf("decode of %q failed: %v", src, err)
		}
		if n != len(buf) {
			t.Fatalf("decode of %q consumed %d of %d bytes", src, n, len(buf))
		}
		if !FormulaOfID(id).Equal(f1) {
			t.Fatalf("wire round-trip changed %q: got %v", src, FormulaOfID(id))
		}
		if want, ok := IDOf(f1); ok && id != want {
			t.Fatalf("decode of %q interned a different equality class", src)
		}
		warm, err := enc.AppendFormula(nil, f1)
		if err != nil {
			t.Fatalf("warm encode of %q failed: %v", src, err)
		}
		id2, _, err := dec.DecodeFormula(warm)
		if err != nil || id2 != id {
			t.Fatalf("warm decode of %q: id %d vs %d, err %v", src, id2, id, err)
		}
	})
}

package nal

import (
	"fmt"
	"strconv"
	"unicode"
)

type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkVar
	tkString
	tkInt
	tkTime
	tkLParen
	tkRParen
	tkLBrack
	tkRBrack
	tkComma
	tkDot
	tkOp // < <= = != >= >
	tkArrow
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tkEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// isIdentRune reports whether r may appear inside an identifier. Identifiers
// cover names like NTP, predicates like isTypeSafe, and path atoms like
// /proc/ipd/12 or key:ab12cd.
func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) ||
		r == '_' || r == '/' || r == '-' || r == ':'
}

func lex(src string) ([]token, error) {
	var toks []token
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(':
			toks = append(toks, token{tkLParen, "(", i})
			i++
		case r == ')':
			toks = append(toks, token{tkRParen, ")", i})
			i++
		case r == '[':
			toks = append(toks, token{tkLBrack, "[", i})
			i++
		case r == ']':
			toks = append(toks, token{tkRBrack, "]", i})
			i++
		case r == ',':
			toks = append(toks, token{tkComma, ",", i})
			i++
		case r == '.':
			toks = append(toks, token{tkDot, ".", i})
			i++
		case r == '?':
			j := i + 1
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("nal: empty variable name at %d", i)
			}
			toks = append(toks, token{tkVar, string(rs[i+1 : j]), i})
			i = j
		case r == '@':
			j := i + 1
			for j < len(rs) && (unicode.IsDigit(rs[j]) || rs[j] == '-' || rs[j] == ':' ||
				rs[j] == 'T' || rs[j] == 'Z' || rs[j] == '+' || rs[j] == '.') {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("nal: empty timestamp at %d", i)
			}
			toks = append(toks, token{tkTime, string(rs[i+1 : j]), i})
			i = j
		case r == '"':
			j := i + 1
			for j < len(rs) && rs[j] != '"' {
				if rs[j] == '\\' && j+1 < len(rs) {
					j++
				}
				j++
			}
			if j >= len(rs) {
				return nil, fmt.Errorf("nal: unterminated string at %d", i)
			}
			// Go escape rules, matching the strconv.Quote form that Str
			// terms print; anything Unquote rejects (raw control
			// characters, bad escapes) is a lexing error.
			s, err := strconv.Unquote(string(rs[i : j+1]))
			if err != nil {
				return nil, fmt.Errorf("nal: bad string literal at %d: %v", i, err)
			}
			toks = append(toks, token{tkString, s, i})
			i = j + 1
		case r == '=':
			if i+1 < len(rs) && rs[i+1] == '>' {
				toks = append(toks, token{tkArrow, "=>", i})
				i += 2
			} else {
				toks = append(toks, token{tkOp, "=", i})
				i++
			}
		case r == '<' || r == '>' || r == '!':
			op := string(r)
			if i+1 < len(rs) && rs[i+1] == '=' {
				op += "="
				i++
			}
			if op == "!" {
				return nil, fmt.Errorf("nal: stray '!' at %d", i)
			}
			toks = append(toks, token{tkOp, op, i})
			i++
		case unicode.IsDigit(r):
			j := i
			for j < len(rs) && unicode.IsDigit(rs[j]) {
				j++
			}
			// A digit run followed by more identifier runes is an
			// identifier (hex hashes like 590fb6 appear in principal tags).
			if j < len(rs) && isIdentRune(rs[j]) {
				for j < len(rs) && isIdentRune(rs[j]) {
					j++
				}
				toks = append(toks, token{tkIdent, string(rs[i:j]), i})
				i = j
				continue
			}
			toks = append(toks, token{tkInt, string(rs[i:j]), i})
			i = j
		case isIdentRune(r):
			j := i
			for j < len(rs) && isIdentRune(rs[j]) {
				j++
			}
			toks = append(toks, token{tkIdent, string(rs[i:j]), i})
			i = j
		default:
			return nil, fmt.Errorf("nal: unexpected character %q at %d", r, i)
		}
	}
	toks = append(toks, token{tkEOF, "", len(rs)})
	return toks, nil
}

package nal

import (
	"encoding/binary"
	"errors"
	"time"
)

// This file implements the binary wire codec for formulas, terms, and
// principals, layered directly on the hash-cons DAG. The unit of transfer
// is a *message*: a sequence of node definitions followed by a root
// reference. Each side of a connection keeps a remap table between its
// process-local hash-cons IDs and dense per-connection wire IDs:
//
//   - the encoder sends a node definition the first time a value crosses
//     the connection and a bare wire-ID backreference every time after;
//   - the decoder interns each definition into the local DAG once (via the
//     cons-from-ID helpers, never the text parser) and thereafter resolves
//     backreferences with a single slice index.
//
// Warm decode of an already-seen formula is therefore an intern lookup —
// one varint read and one slice index, zero allocations — which is what
// makes cross-node credential exchange cheap after the first presentation
// (TestWireWarmDecodeZeroAlloc pins this).
//
// Wire IDs are dense, 1-based, and per-kind (formulas, terms, principals
// number independently); a definition implicitly receives the next ID of
// its kind. A malformed stream (unknown opcode, forward reference,
// truncation, oversized count) fails with ErrWireMalformed and leaves the
// decoder tables in a consistent prefix state. Both directions of a
// connection use independent codec pairs; neither end trusts the other's
// numbering beyond the prefix it has already validated.

// Errors returned by the wire codec.
var (
	// ErrConsSaturated reports that the process-wide hash-cons table is at
	// its cap, so the value cannot be assigned a stable handle. Transports
	// surface it; callers may retry with the text form.
	ErrConsSaturated = errors.New("nal: hash-cons table saturated")
	// ErrWireMalformed reports a syntactically invalid wire stream.
	ErrWireMalformed = errors.New("nal: malformed wire stream")
)

// Wire opcodes. A message is defs (in dependency order) then one root.
const (
	wopDefPrin    byte = 1
	wopDefTerm    byte = 2
	wopDefFormula byte = 3
	wopRoot       byte = 4 // formula root reference: ends a formula message
	wopRootPrin   byte = 5 // principal root reference: ends a principal message
)

// WireEncoder is the egress half of one connection's remap state: local
// hash-cons ID → wire ID for every node already sent. Not safe for
// concurrent use; transports serialize sends per connection.
type WireEncoder struct {
	f map[FormulaID]uint32
	t map[TermID]uint32
	p map[PrinID]uint32
}

// NewWireEncoder returns an encoder with empty remap tables.
func NewWireEncoder() *WireEncoder {
	return &WireEncoder{
		f: map[FormulaID]uint32{},
		t: map[TermID]uint32{},
		p: map[PrinID]uint32{},
	}
}

// AppendFormula interns f and appends its wire message to dst. It fails
// only when the hash-cons table is saturated.
func (e *WireEncoder) AppendFormula(dst []byte, f Formula) ([]byte, error) {
	id, ok := IDOf(f)
	if !ok {
		return dst, ErrConsSaturated
	}
	return e.AppendFormulaID(dst, id), nil
}

// AppendFormulaID appends the wire message for an already-interned formula:
// definitions for whatever subgraph the connection has not seen, then the
// root reference. A fully warm formula costs two bytes plus one varint.
func (e *WireEncoder) AppendFormulaID(dst []byte, id FormulaID) []byte {
	dst = e.defFormula(dst, id)
	dst = append(dst, wopRoot)
	return binary.AppendUvarint(dst, uint64(e.f[id]))
}

// AppendPrin interns p and appends its wire message to dst.
func (e *WireEncoder) AppendPrin(dst []byte, p Principal) ([]byte, error) {
	id, ok := IDOfPrin(p)
	if !ok {
		return dst, ErrConsSaturated
	}
	return e.AppendPrinID(dst, id), nil
}

// AppendPrinID appends the wire message for an already-interned principal.
func (e *WireEncoder) AppendPrinID(dst []byte, id PrinID) []byte {
	dst = e.defPrin(dst, id)
	dst = append(dst, wopRootPrin)
	return binary.AppendUvarint(dst, uint64(e.p[id]))
}

func appendWireString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// defFormula emits definitions for id's subgraph (children first) unless
// the connection has already seen them. Recursion depth is bounded by the
// depth of formulas this process itself built.
func (e *WireEncoder) defFormula(dst []byte, id FormulaID) []byte {
	if _, ok := e.f[id]; ok {
		return dst
	}
	n := FormulaNode(id)
	switch n.Kind {
	case FPred:
		for _, a := range n.Args {
			dst = e.defTerm(dst, a)
		}
	case FSays:
		dst = e.defPrin(dst, n.P)
		dst = e.defFormula(dst, FormulaID(n.L))
	case FSpeaksFor:
		dst = e.defPrin(dst, n.A)
		dst = e.defPrin(dst, n.B)
	case FCompare:
		dst = e.defTerm(dst, TermID(n.L))
		dst = e.defTerm(dst, TermID(n.R))
	case FNot:
		dst = e.defFormula(dst, FormulaID(n.L))
	case FAnd, FOr, FImplies:
		dst = e.defFormula(dst, FormulaID(n.L))
		dst = e.defFormula(dst, FormulaID(n.R))
	}
	dst = append(dst, wopDefFormula, byte(n.Kind))
	switch n.Kind {
	case FPred:
		dst = appendWireString(dst, n.Name)
		dst = binary.AppendUvarint(dst, uint64(len(n.Args)))
		for _, a := range n.Args {
			dst = binary.AppendUvarint(dst, uint64(e.t[a]))
		}
	case FSays:
		dst = binary.AppendUvarint(dst, uint64(e.p[n.P]))
		dst = binary.AppendUvarint(dst, uint64(e.f[FormulaID(n.L)]))
	case FSpeaksFor:
		dst = binary.AppendUvarint(dst, uint64(e.p[n.A]))
		dst = binary.AppendUvarint(dst, uint64(e.p[n.B]))
		if n.HasScope {
			dst = append(dst, 1)
			dst = appendWireString(dst, n.Name)
		} else {
			dst = append(dst, 0)
		}
	case FCompare:
		dst = append(dst, byte(n.Op))
		dst = binary.AppendUvarint(dst, uint64(e.t[TermID(n.L)]))
		dst = binary.AppendUvarint(dst, uint64(e.t[TermID(n.R)]))
	case FNot:
		dst = binary.AppendUvarint(dst, uint64(e.f[FormulaID(n.L)]))
	case FAnd, FOr, FImplies:
		dst = binary.AppendUvarint(dst, uint64(e.f[FormulaID(n.L)]))
		dst = binary.AppendUvarint(dst, uint64(e.f[FormulaID(n.R)]))
	}
	e.f[id] = uint32(len(e.f) + 1)
	return dst
}

func (e *WireEncoder) defTerm(dst []byte, id TermID) []byte {
	if _, ok := e.t[id]; ok {
		return dst
	}
	n := TermNode(id)
	switch n.Kind {
	case TPrin:
		dst = e.defPrin(dst, n.P)
	case TList, TFunc:
		for _, a := range n.Args {
			dst = e.defTerm(dst, a)
		}
	}
	dst = append(dst, wopDefTerm, byte(n.Kind))
	switch n.Kind {
	case TStr, TAtom, TVar:
		dst = appendWireString(dst, n.S)
	case TInt:
		dst = binary.AppendVarint(dst, n.I)
	case TTime:
		ts := n.t.(Time).T
		dst = binary.AppendVarint(dst, ts.Unix())
		dst = binary.AppendUvarint(dst, uint64(ts.Nanosecond()))
	case TPrin:
		dst = binary.AppendUvarint(dst, uint64(e.p[n.P]))
	case TList, TFunc:
		if n.Kind == TFunc {
			dst = appendWireString(dst, n.S)
		}
		dst = binary.AppendUvarint(dst, uint64(len(n.Args)))
		for _, a := range n.Args {
			dst = binary.AppendUvarint(dst, uint64(e.t[a]))
		}
	}
	e.t[id] = uint32(len(e.t) + 1)
	return dst
}

func (e *WireEncoder) defPrin(dst []byte, id PrinID) []byte {
	if _, ok := e.p[id]; ok {
		return dst
	}
	n := PrinNode(id)
	if n.Kind == PSub {
		dst = e.defPrin(dst, n.Parent)
	}
	dst = append(dst, wopDefPrin, byte(n.Kind))
	switch n.Kind {
	case PSub:
		dst = binary.AppendUvarint(dst, uint64(e.p[n.Parent]))
		dst = appendWireString(dst, n.S)
	default:
		dst = appendWireString(dst, n.S)
	}
	e.p[id] = uint32(len(e.p) + 1)
	return dst
}

// WireDecoder is the ingress half of the remap state: wire ID → local
// hash-cons ID for every node the connection has defined. Not safe for
// concurrent use; transports run one ingress loop per connection.
type WireDecoder struct {
	f []FormulaID
	t []TermID
	p []PrinID
}

// NewWireDecoder returns a decoder with empty remap tables.
func NewWireDecoder() *WireDecoder { return &WireDecoder{} }

// wireReader is a bounds-checked cursor over one message.
type wireReader struct {
	buf []byte
	off int
}

func (r *wireReader) byte() (byte, bool) {
	if r.off >= len(r.buf) {
		return 0, false
	}
	b := r.buf[r.off]
	r.off++
	return b, true
}

func (r *wireReader) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, false
	}
	r.off += n
	return v, true
}

func (r *wireReader) varint() (int64, bool) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, false
	}
	r.off += n
	return v, true
}

func (r *wireReader) str() (string, bool) {
	n, ok := r.uvarint()
	if !ok || n > uint64(len(r.buf)-r.off) {
		return "", false
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, true
}

// fRef resolves a formula wire reference read from the stream.
func (d *WireDecoder) fRef(r *wireReader) (FormulaID, bool) {
	v, ok := r.uvarint()
	if !ok || v == 0 || v > uint64(len(d.f)) {
		return 0, false
	}
	return d.f[v-1], true
}

func (d *WireDecoder) tRef(r *wireReader) (TermID, bool) {
	v, ok := r.uvarint()
	if !ok || v == 0 || v > uint64(len(d.t)) {
		return 0, false
	}
	return d.t[v-1], true
}

func (d *WireDecoder) pRef(r *wireReader) (PrinID, bool) {
	v, ok := r.uvarint()
	if !ok || v == 0 || v > uint64(len(d.p)) {
		return 0, false
	}
	return d.p[v-1], true
}

// DecodeFormula decodes one formula message from the front of buf,
// returning the interned handle and the number of bytes consumed.
// Definitions extend the connection's remap tables as a side effect; a
// malformed or truncated message fails without losing previously decoded
// state. The warm path — a message that is a bare root reference — reads
// one opcode and one varint and allocates nothing (pinned by
// BenchmarkWireDecodeWarm; nexuslint checks the static view).
//
//nexus:noalloc
func (d *WireDecoder) DecodeFormula(buf []byte) (FormulaID, int, error) {
	r := wireReader{buf: buf}
	for {
		op, ok := r.byte()
		if !ok {
			return 0, 0, ErrWireMalformed
		}
		switch op {
		case wopRoot:
			id, ok := d.fRef(&r)
			if !ok {
				return 0, 0, ErrWireMalformed
			}
			return id, r.off, nil
		case wopDefFormula:
			if err := d.defFormula(&r); err != nil {
				return 0, 0, err
			}
		case wopDefTerm:
			if err := d.defTerm(&r); err != nil {
				return 0, 0, err
			}
		case wopDefPrin:
			if err := d.defPrin(&r); err != nil {
				return 0, 0, err
			}
		default:
			return 0, 0, ErrWireMalformed
		}
	}
}

// DecodePrin decodes one principal message from the front of buf.
func (d *WireDecoder) DecodePrin(buf []byte) (PrinID, int, error) {
	r := wireReader{buf: buf}
	for {
		op, ok := r.byte()
		if !ok {
			return 0, 0, ErrWireMalformed
		}
		switch op {
		case wopRootPrin:
			id, ok := d.pRef(&r)
			if !ok {
				return 0, 0, ErrWireMalformed
			}
			return id, r.off, nil
		case wopDefTerm:
			if err := d.defTerm(&r); err != nil {
				return 0, 0, err
			}
		case wopDefPrin:
			if err := d.defPrin(&r); err != nil {
				return 0, 0, err
			}
		default:
			return 0, 0, ErrWireMalformed
		}
	}
}

// Definitions intern new nodes and extend the remap tables; the cost is
// paid once per novel subterm on a connection. The noalloc warm path is
// the bare reference case in DecodeFormula.
//
//nexus:alloc-ok
func (d *WireDecoder) defFormula(r *wireReader) error {
	kb, ok := r.byte()
	if !ok {
		return ErrWireMalformed
	}
	var (
		id  FormulaID
		cok bool
	)
	switch FKind(kb) {
	case FTrue:
		id, cok = IDOf(TrueF{})
	case FFalse:
		id, cok = IDOf(FalseF{})
	case FPred:
		name, ok := r.str()
		if !ok {
			return ErrWireMalformed
		}
		n, ok := r.uvarint()
		// Each argument reference costs at least one byte, so the
		// remaining buffer bounds a legitimate count.
		if !ok || n > uint64(len(r.buf)-r.off) {
			return ErrWireMalformed
		}
		ids := make([]TermID, n)
		for i := range ids {
			if ids[i], ok = d.tRef(r); !ok {
				return ErrWireMalformed
			}
		}
		id, cok = consPredIDs(name, ids)
	case FSays:
		p, ok := d.pRef(r)
		if !ok {
			return ErrWireMalformed
		}
		body, ok := d.fRef(r)
		if !ok {
			return ErrWireMalformed
		}
		id, cok = ConsSays(p, body)
	case FSpeaksFor:
		a, ok := d.pRef(r)
		if !ok {
			return ErrWireMalformed
		}
		b, ok := d.pRef(r)
		if !ok {
			return ErrWireMalformed
		}
		flag, ok := r.byte()
		if !ok || flag > 1 {
			return ErrWireMalformed
		}
		scope := ""
		if flag == 1 {
			if scope, ok = r.str(); !ok {
				return ErrWireMalformed
			}
		}
		id, cok = ConsSpeaksFor(a, b, scope, flag == 1)
	case FCompare:
		opb, ok := r.byte()
		if !ok || CompareOp(opb) > OpGT {
			return ErrWireMalformed
		}
		l, ok := d.tRef(r)
		if !ok {
			return ErrWireMalformed
		}
		rt, ok := d.tRef(r)
		if !ok {
			return ErrWireMalformed
		}
		id, cok = consCompareIDs(CompareOp(opb), l, rt)
	case FNot:
		inner, ok := d.fRef(r)
		if !ok {
			return ErrWireMalformed
		}
		id, cok = ConsNot(inner)
	case FAnd, FOr, FImplies:
		l, ok := d.fRef(r)
		if !ok {
			return ErrWireMalformed
		}
		rf, ok := d.fRef(r)
		if !ok {
			return ErrWireMalformed
		}
		switch FKind(kb) {
		case FAnd:
			id, cok = ConsAnd(l, rf)
		case FOr:
			id, cok = ConsOr(l, rf)
		default:
			id, cok = ConsImplies(l, rf)
		}
	default:
		return ErrWireMalformed
	}
	if !cok {
		return ErrConsSaturated
	}
	d.f = append(d.f, id)
	return nil
}

// Definitions intern new nodes and extend the remap tables; the cost is
// paid once per novel subterm on a connection. The noalloc warm path is
// the bare reference case in DecodeFormula.
//
//nexus:alloc-ok
func (d *WireDecoder) defTerm(r *wireReader) error {
	kb, ok := r.byte()
	if !ok {
		return ErrWireMalformed
	}
	var (
		id  TermID
		cok bool
	)
	switch TKind(kb) {
	case TStr, TAtom, TVar:
		s, ok := r.str()
		if !ok {
			return ErrWireMalformed
		}
		switch TKind(kb) {
		case TStr:
			id, cok = IDOfTerm(Str(s))
		case TAtom:
			id, cok = IDOfTerm(Atom(s))
		default:
			id, cok = IDOfTerm(Var(s))
		}
	case TInt:
		v, ok := r.varint()
		if !ok {
			return ErrWireMalformed
		}
		id, cok = IDOfTerm(Int(v))
	case TTime:
		sec, ok := r.varint()
		if !ok {
			return ErrWireMalformed
		}
		nsec, ok := r.uvarint()
		if !ok || nsec >= 1e9 {
			return ErrWireMalformed
		}
		id, cok = IDOfTerm(Time{T: time.Unix(sec, int64(nsec)).UTC()})
	case TPrin:
		p, ok := d.pRef(r)
		if !ok {
			return ErrWireMalformed
		}
		id, cok = consPrinTermID(p)
	case TList, TFunc:
		name := ""
		if TKind(kb) == TFunc {
			if name, ok = r.str(); !ok {
				return ErrWireMalformed
			}
		}
		n, ok := r.uvarint()
		if !ok || n > uint64(len(r.buf)-r.off) {
			return ErrWireMalformed
		}
		ids := make([]TermID, n)
		for i := range ids {
			if ids[i], ok = d.tRef(r); !ok {
				return ErrWireMalformed
			}
		}
		id, cok = consTermArgsIDs(TKind(kb), name, ids)
	default:
		return ErrWireMalformed
	}
	if !cok {
		return ErrConsSaturated
	}
	d.t = append(d.t, id)
	return nil
}

// Definitions intern new nodes and extend the remap tables; the cost is
// paid once per novel subterm on a connection. The noalloc warm path is
// the bare reference case in DecodeFormula.
//
//nexus:alloc-ok
func (d *WireDecoder) defPrin(r *wireReader) error {
	kb, ok := r.byte()
	if !ok {
		return ErrWireMalformed
	}
	var (
		id  PrinID
		cok bool
	)
	switch PKind(kb) {
	case PName, PKey, PHash, PVar:
		s, ok := r.str()
		if !ok {
			return ErrWireMalformed
		}
		switch PKind(kb) {
		case PName:
			id, cok = IDOfPrin(Name(s))
		case PKey:
			id, cok = IDOfPrin(Key(s))
		case PHash:
			id, cok = IDOfPrin(HashPrin(s))
		default:
			id, cok = IDOfPrin(varPrin(s))
		}
	case PSub:
		parent, ok := d.pRef(r)
		if !ok {
			return ErrWireMalformed
		}
		tag, ok := r.str()
		if !ok {
			return ErrWireMalformed
		}
		id, cok = consSubID(parent, tag)
	default:
		return ErrWireMalformed
	}
	if !cok {
		return ErrConsSaturated
	}
	d.p = append(d.p, id)
	return nil
}

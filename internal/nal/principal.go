package nal

import (
	"fmt"
	"strings"
)

// Principal identifies an entity to which statements can be attributed: a
// named service, a cryptographic key, a program hash, or a subprincipal of
// another principal. Principals are immutable values.
type Principal interface {
	fmt.Stringer
	// EqualPrin reports structural equality.
	EqualPrin(Principal) bool
	isPrincipal()
}

// Name is a free-standing named principal such as NTP or /proc/ipd/12.
// Names are given meaning by the statements that mention them; the logic
// itself treats them as opaque.
type Name string

// Key is a principal identified by the fingerprint (hex digest) of a public
// key. A statement by Key(f) is one signed by, or attributable over a secure
// channel to, the holder of the matching private key. Written key:f.
type Key string

// HashPrin is a principal identified by the launch-time hash of a program
// image, written hash:digest. Hash principals are the axiomatic basis for
// trust that logical attestation generalizes.
type HashPrin string

// Sub is the subprincipal P.Tag. The parent P speaks for P.Tag axiomatically:
// a kernel speaks for the processes it implements, the TPM's key speaks for
// the kernels it measures, and so on.
type Sub struct {
	Parent Principal
	Tag    string
}

func (Name) isPrincipal()     {}
func (Key) isPrincipal()      {}
func (HashPrin) isPrincipal() {}
func (Sub) isPrincipal()      {}

func (n Name) String() string     { return string(n) }
func (k Key) String() string      { return "key:" + string(k) }
func (h HashPrin) String() string { return "hash:" + string(h) }

func (s Sub) String() string { return string(appendPrin(nil, s)) }

func (n Name) EqualPrin(o Principal) bool { v, ok := o.(Name); return ok && v == n }
func (k Key) EqualPrin(o Principal) bool  { v, ok := o.(Key); return ok && v == k }
func (h HashPrin) EqualPrin(o Principal) bool {
	v, ok := o.(HashPrin)
	return ok && v == h
}

func (s Sub) EqualPrin(o Principal) bool {
	v, ok := o.(Sub)
	return ok && v.Tag == s.Tag && v.Parent.EqualPrin(s.Parent)
}

// SubOf returns the subprincipal parent.tag.
func SubOf(parent Principal, tag string) Sub { return Sub{Parent: parent, Tag: tag} }

// SubChain builds parent.t1.t2...tn.
func SubChain(parent Principal, tags ...string) Principal {
	p := parent
	for _, t := range tags {
		p = Sub{Parent: p, Tag: t}
	}
	return p
}

// IsAncestor reports whether a is a (proper or improper) prefix of b in the
// subprincipal hierarchy; i.e. b is a or a subprincipal of a subprincipal
// ... of a. Because parents speak for their subprincipals, IsAncestor(a, b)
// implies a speaksfor b.
func IsAncestor(a, b Principal) bool {
	for {
		if a.EqualPrin(b) {
			return true
		}
		s, ok := b.(Sub)
		if !ok {
			return false
		}
		b = s.Parent
	}
}

// RootOf returns the outermost parent of a subprincipal chain (the principal
// itself when it is not a Sub). The Nexus attaches resource quotas to the
// root of a process tree.
func RootOf(p Principal) Principal {
	for {
		s, ok := p.(Sub)
		if !ok {
			return p
		}
		p = s.Parent
	}
}

// PrinDepth returns the number of subprincipal links in p.
func PrinDepth(p Principal) int {
	d := 0
	for {
		s, ok := p.(Sub)
		if !ok {
			return d
		}
		d++
		p = s.Parent
	}
}

// ParsePrincipalString is a convenience wrapper around ParsePrincipal that
// panics on malformed input. It is intended for principal literals in tests
// and examples.
func MustPrincipal(s string) Principal {
	p, err := ParsePrincipal(s)
	if err != nil {
		panic("nal: bad principal literal " + strings.TrimSpace(s) + ": " + err.Error())
	}
	return p
}

package nal

import (
	"fmt"
)

// Formula is a NAL formula. Formulas are immutable values; all operations
// return new formulas. The canonical textual form produced by String is
// parseable by Parse and is used as the hash key for caches.
type Formula interface {
	fmt.Stringer
	// Equal reports structural equality.
	Equal(Formula) bool
	isFormula()
}

// Pred is an application of an uninterpreted predicate to terms, such as
// isTypeSafe(hash:ab12) or openFile("/dir/file"). Predicate symbols carry no
// built-in meaning; third parties introduce them freely (§2.2 of the paper).
type Pred struct {
	Name string
	Args []Term
}

// Says is the belief modality "P says F": F is in the worldview of P.
type Says struct {
	P Principal
	F Formula
}

// SpeaksFor is "A speaksfor B" (On == nil) or the scoped delegation
// "A speaksfor B on pat" (On != nil). With the scope, only statements of A
// matching pat transfer to B.
type SpeaksFor struct {
	A, B Principal
	On   *Pattern
}

// Pattern restricts a scoped delegation. A formula matches the pattern if it
// is a predicate with name Pred, or a comparison whose left term is the atom
// named Pred (so "on TimeNow" admits TimeNow < @2026-03-19).
type Pattern struct {
	Pred string
}

// Compare is an order or equality constraint over terms, such as
// TimeNow < @2026-03-19 or size = 42. Guards cannot decide comparisons that
// mention stateful atoms; those are referred to authorities.
type Compare struct {
	Op   CompareOp
	L, R Term
}

// CompareOp enumerates the comparison operators.
type CompareOp int

// Comparison operators.
const (
	OpLT CompareOp = iota
	OpLE
	OpEQ
	OpNE
	OpGE
	OpGT
)

// Not is constructive negation.
type Not struct{ F Formula }

// And is conjunction.
type And struct{ L, R Formula }

// Or is disjunction.
type Or struct{ L, R Formula }

// Implies is implication.
type Implies struct{ L, R Formula }

// FalseF is the absurd formula. From "A says false" anything in A's
// worldview follows, but nothing in any other principal's (deduction is
// local, §2.1).
type FalseF struct{}

// TrueF is the trivially satisfied formula; the default ALLOW goal.
type TrueF struct{}

func (Pred) isFormula()      {}
func (Says) isFormula()      {}
func (SpeaksFor) isFormula() {}
func (Compare) isFormula()   {}
func (Not) isFormula()       {}
func (And) isFormula()       {}
func (Or) isFormula()        {}
func (Implies) isFormula()   {}
func (FalseF) isFormula()    {}
func (TrueF) isFormula()     {}

func (op CompareOp) String() string {
	switch op {
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	case OpGE:
		return ">="
	case OpGT:
		return ">"
	}
	return "?op?"
}

// Eval evaluates the comparison over ground comparable terms.
func (op CompareOp) Eval(sign int) bool {
	switch op {
	case OpLT:
		return sign < 0
	case OpLE:
		return sign <= 0
	case OpEQ:
		return sign == 0
	case OpNE:
		return sign != 0
	case OpGE:
		return sign >= 0
	case OpGT:
		return sign > 0
	}
	return false
}

// The String methods delegate to the canonical encoders in canon.go, which
// render the whole AST into one buffer; binary connectives are
// parenthesized there so the output is unambiguous and reparseable.

func (p Pred) String() string      { return string(appendFormula(nil, p)) }
func (s Says) String() string      { return string(appendFormula(nil, s)) }
func (s SpeaksFor) String() string { return string(appendFormula(nil, s)) }
func (c Compare) String() string   { return string(appendFormula(nil, c)) }
func (n Not) String() string       { return string(appendFormula(nil, n)) }
func (a And) String() string       { return string(appendFormula(nil, a)) }
func (o Or) String() string        { return string(appendFormula(nil, o)) }
func (i Implies) String() string   { return string(appendFormula(nil, i)) }
func (FalseF) String() string      { return "false" }
func (TrueF) String() string       { return "true" }

func (p Pred) Equal(o Formula) bool {
	v, ok := o.(Pred)
	if !ok || v.Name != p.Name || len(v.Args) != len(p.Args) {
		return false
	}
	for i := range p.Args {
		if !p.Args[i].EqualTerm(v.Args[i]) {
			return false
		}
	}
	return true
}

func (s Says) Equal(o Formula) bool {
	v, ok := o.(Says)
	return ok && v.P.EqualPrin(s.P) && v.F.Equal(s.F)
}

func (s SpeaksFor) Equal(o Formula) bool {
	v, ok := o.(SpeaksFor)
	if !ok || !v.A.EqualPrin(s.A) || !v.B.EqualPrin(s.B) {
		return false
	}
	if (v.On == nil) != (s.On == nil) {
		return false
	}
	return v.On == nil || v.On.Pred == s.On.Pred
}

func (c Compare) Equal(o Formula) bool {
	v, ok := o.(Compare)
	return ok && v.Op == c.Op && v.L.EqualTerm(c.L) && v.R.EqualTerm(c.R)
}

func (n Not) Equal(o Formula) bool {
	v, ok := o.(Not)
	return ok && v.F.Equal(n.F)
}

func (a And) Equal(o Formula) bool {
	v, ok := o.(And)
	return ok && v.L.Equal(a.L) && v.R.Equal(a.R)
}

func (r Or) Equal(o Formula) bool {
	v, ok := o.(Or)
	return ok && v.L.Equal(r.L) && v.R.Equal(r.R)
}

func (i Implies) Equal(o Formula) bool {
	v, ok := o.(Implies)
	return ok && v.L.Equal(i.L) && v.R.Equal(i.R)
}

func (FalseF) Equal(o Formula) bool { _, ok := o.(FalseF); return ok }
func (TrueF) Equal(o Formula) bool  { _, ok := o.(TrueF); return ok }

// Matches reports whether formula f falls within the pattern's scope:
// a predicate with the pattern's name, a comparison whose left-hand side is
// the atom of that name, or a conjunction of matching formulas.
func (pat Pattern) Matches(f Formula) bool {
	switch v := f.(type) {
	case Pred:
		return v.Name == pat.Pred
	case Compare:
		if a, ok := v.L.(Atom); ok {
			return string(a) == pat.Pred
		}
		return false
	case And:
		return pat.Matches(v.L) && pat.Matches(v.R)
	}
	return false
}

// Conj builds the right-nested conjunction of fs; it returns TrueF for an
// empty list and the single formula unchanged for a singleton.
func Conj(fs ...Formula) Formula {
	switch len(fs) {
	case 0:
		return TrueF{}
	case 1:
		return fs[0]
	}
	return And{L: fs[0], R: Conj(fs[1:]...)}
}

// Conjuncts flattens nested conjunctions into a list.
func Conjuncts(f Formula) []Formula {
	if a, ok := f.(And); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	return []Formula{f}
}

// SaysWrap returns P says F, collapsing the idempotent case where F is
// already P says G for the same P (the monad join, valid in NAL).
func SaysWrap(p Principal, f Formula) Formula {
	if s, ok := f.(Says); ok && s.P.EqualPrin(p) {
		return s
	}
	return Says{P: p, F: f}
}

package proof

import (
	"errors"
	"fmt"

	"repro/internal/nal"
)

// Compile errors.
var (
	// ErrConsSaturated reports that the hash-cons table hit its cap while
	// interning the proof's formulas; callers fall back to the structural
	// checker, trading speed for unchanged semantics.
	ErrConsSaturated = errors.New("proof: hash-cons table saturated")
	// ErrUncompilable reports a proof whose shape the compiler rejects
	// (nil conclusions, out-of-range premises); the structural checker
	// produces the precise diagnostic.
	ErrUncompilable = errors.New("proof: not compilable")
)

// Compiled is the compiled representation of a proof: every step's
// conclusion and premises resolved to hash-consed FormulaIDs, rule tags and
// memo keys precomputed, subproofs nested in place. Checking a Compiled
// proof performs no text parsing, no AST serialization, and no structural
// formula comparisons — formula equality is integer equality on IDs, and
// destructuring is array indexing into the formula DAG.
//
// A Compiled value is immutable and safe for concurrent use; the kernel
// compiles a proof once at setproof and every subsequent authorize reuses
// it.
type Compiled struct {
	steps  []cstep
	nsteps int // total rule applications including subproofs
}

type cstep struct {
	rule Rule
	f    nal.FormulaID
	// prems holds the first two premise conclusions, resolved at compile
	// time; np is the declared premise count. No rule takes more than two
	// premises, so a step with np > 2 fails its arity check regardless of
	// the overflow values.
	prems   [2]nal.FormulaID
	np      uint8
	sub     []csub
	label   int // full width: truncating Step.Label would remap credentials
	channel string
	ground  bool
	// pure marks steps whose validity depends only on hash-consed
	// identities: no label, no authority, and no handoff that needs a trust
	// root; nested subproofs all pure. Only pure steps touch the memo.
	pure     bool
	substeps int32 // rule applications inside nested subproofs
	key      memoKey
}

type csub struct {
	hyp   nal.FormulaID
	steps []cstep
}

// Compile translates p into its compiled form. It does not validate the
// proof beyond shape (Check does); it fails only when the proof is
// structurally uncompilable or the hash-cons table is saturated.
func Compile(p *Proof) (*Compiled, error) {
	if p == nil || len(p.Steps) == 0 {
		return nil, ErrEmptyProof
	}
	c := &Compiled{}
	steps, _, err := c.compileFrame(p.Steps, 0, false)
	if err != nil {
		return nil, err
	}
	c.steps = steps
	return c, nil
}

// Conclusion returns the ID of the formula the proof derives.
func (c *Compiled) Conclusion() nal.FormulaID { return c.steps[len(c.steps)-1].f }

// Len returns the total number of rule applications, matching Proof.Len.
func (c *Compiled) Len() int { return c.nsteps }

func (c *Compiled) compileFrame(steps []Step, hyp nal.FormulaID, hasHyp bool) ([]cstep, bool, error) {
	out := make([]cstep, len(steps))
	framePure := true
	for at, s := range steps {
		c.nsteps++
		if s.F == nil {
			return nil, false, fmt.Errorf("%w: step %d has no conclusion", ErrUncompilable, at)
		}
		id, ok := nal.IDOf(s.F)
		if !ok {
			return nil, false, ErrConsSaturated
		}
		cs := &out[at]
		cs.rule = s.Rule
		cs.f = id
		cs.label = s.Label
		cs.channel = s.Channel
		cs.ground = nal.GroundID(id)
		if len(s.Premises) > 255 {
			return nil, false, fmt.Errorf("%w: step %d has %d premises", ErrUncompilable, at, len(s.Premises))
		}
		cs.np = uint8(len(s.Premises))
		for j, i := range s.Premises {
			var id nal.FormulaID
			switch {
			case i == -1:
				if !hasHyp {
					return nil, false, fmt.Errorf("%w: step %d references hypothesis outside subproof", ErrUncompilable, at)
				}
				id = hyp
			case i < 0 || i >= at:
				return nil, false, fmt.Errorf("%w: step %d references out-of-range premise %d", ErrUncompilable, at, i)
			default:
				id = out[i].f
			}
			if j < 2 {
				cs.prems[j] = id
			}
		}
		subPure := true
		if len(s.Sub) > 0 {
			cs.sub = make([]csub, len(s.Sub))
			before := c.nsteps
			for si, sub := range s.Sub {
				if sub.Hyp == nil {
					return nil, false, fmt.Errorf("%w: subproof of step %d has no hypothesis", ErrUncompilable, at)
				}
				hypID, ok := nal.IDOf(sub.Hyp)
				if !ok {
					return nil, false, ErrConsSaturated
				}
				ss, pure, err := c.compileFrame(sub.Steps, hypID, true)
				if err != nil {
					return nil, false, err
				}
				cs.sub[si] = csub{hyp: hypID, steps: ss}
				subPure = subPure && pure
			}
			cs.substeps = int32(c.nsteps - before)
		}
		cs.pure = subPure && c.stepPure(cs)
		framePure = framePure && cs.pure
		if cs.pure {
			cs.key = memoKey{rule: cs.rule, np: cs.np, nsub: uint8(len(cs.sub)),
				p0: cs.prems[0], p1: cs.prems[1], f: cs.f}
		}
	}
	return out, framePure, nil
}

// stepPure reports whether the step's own rule is environment-independent.
// Label steps depend on the credential list, authority steps on live state,
// and a handoff needs the trust roots unless the speaker already owns the
// delegatee — decidable here because premises are resolved.
func (c *Compiled) stepPure(cs *cstep) bool {
	switch cs.rule {
	case RuleLabel, RuleAuthority:
		return false
	case RuleHandoff:
		if cs.np != 1 {
			return false
		}
		sy := nal.FormulaNode(cs.prems[0])
		if sy.Kind != nal.FSays {
			return false
		}
		sf := nal.FormulaNode(nal.FormulaID(sy.L))
		return sf.Kind == nal.FSpeaksFor && nal.IsAncestorID(sy.P, sf.B)
	}
	return true
}

// Check validates the compiled proof and confirms its conclusion equals
// goal, with the semantics of Check on the source proof. The warm path —
// every formula already interned, memo hits on pure steps — allocates
// nothing (pinned by TestAllocCompiledProofCheck; nexuslint checks the
// static view).
//
//nexus:noalloc
func (c *Compiled) Check(goal nal.Formula, env *Env) (Result, error) {
	var res Result
	if env == nil {
		env = &Env{} //nexus:coldpath — warm callers pass their own Env
	}
	credIDs := env.CredentialIDs
	// Interning credentials on the fly is the compatibility path; warm
	// callers (the kernel's registered-proof pipeline) precompute
	// CredentialIDs once at SetProof time.
	if len(credIDs) != len(env.Credentials) { //nexus:coldpath
		var buf [32]nal.FormulaID
		credIDs = buf[:0]
		for _, cr := range env.Credentials {
			// ok=false means the credential is not in the table and cannot
			// enter it (cap); it then equals no interned step conclusion,
			// and ID 0 correctly matches nothing.
			id, _ := nal.IDOf(cr)
			credIDs = append(credIDs, id)
		}
	}
	if err := checkFrameC(c.steps, credIDs, env, &res); err != nil {
		return res, err
	}
	// One structural comparison of the final conclusion against the goal:
	// goals are instantiated per request with per-process principals, so
	// interning them would grow the cons table with process churn; Equal
	// against the DAG's canonical AST is allocation-free and just as fast
	// for a single comparison.
	if !nal.FormulaOfID(c.Conclusion()).Equal(goal) {
		return res, fmt.Errorf("%w: proved %q, goal %q", ErrWrongGoal, nal.FormulaOfID(c.Conclusion()), goal)
	}
	res.Cacheable = res.AuthorityCalls == 0
	return res, nil
}

func checkFrameC(steps []cstep, credIDs []nal.FormulaID, env *Env, res *Result) error {
	for at := range steps {
		s := &steps[at]
		res.Steps++
		if !s.ground {
			return fmt.Errorf("%w: step %d conclusion %q is not ground", ErrUnsound, at, nal.FormulaOfID(s.f))
		}
		// The memo covers pure steps that carry subproofs: a hit skips the
		// nested frames entirely. Simple pure steps are deliberately NOT
		// memoized — with ID equality their destructuring check is cheaper
		// than a memo probe (measured in Ablation_ProofPipeline).
		memoable := s.pure && len(s.sub) > 0
		if memoable {
			if v, ok := memoLookup(&s.key); ok {
				res.Steps += int(v.extra)
				continue
			}
		}
		if err := checkStepC(s, credIDs, env, res); err != nil {
			return fmt.Errorf("step %d (%s): %w", at, s.rule, err)
		}
		if memoable {
			memoInsert(&s.key, memoVal{extra: s.substeps})
		}
	}
	return nil
}

func checkSubC(sub *csub, want nal.FormulaID, credIDs []nal.FormulaID, env *Env, res *Result) error {
	if len(sub.steps) == 0 {
		if sub.hyp == want {
			return nil
		}
		return fmt.Errorf("%w: empty subproof does not conclude %q", ErrUnsound, nal.FormulaOfID(want))
	}
	if err := checkFrameC(sub.steps, credIDs, env, res); err != nil {
		return err
	}
	if last := sub.steps[len(sub.steps)-1].f; last != want {
		return fmt.Errorf("%w: subproof concludes %q, need %q",
			ErrUnsound, nal.FormulaOfID(last), nal.FormulaOfID(want))
	}
	return nil
}

// checkStepC is checkStep over the formula DAG: destructuring is array
// indexing (nal.FormulaNode), every equality an integer compare.
func checkStepC(s *cstep, credIDs []nal.FormulaID, env *Env, res *Result) error {
	ps := &s.prems
	need := func(n uint8) error {
		if s.np != n {
			return fmt.Errorf("%w: expected %d premises, have %d", ErrUnsound, n, s.np)
		}
		return nil
	}
	cf := nal.FormulaNode(s.f)
	switch s.rule {
	case RuleLabel:
		if s.label < 0 || s.label >= len(credIDs) {
			return fmt.Errorf("%w: credential #%d not supplied", ErrNoCred, s.label)
		}
		if credIDs[s.label] != s.f {
			return fmt.Errorf("%w: credential #%d is %q, step claims %q",
				ErrNoCred, s.label, env.Credentials[s.label], nal.FormulaOfID(s.f))
		}
		return nil

	case RuleAuthority:
		res.AuthorityCalls++
		if env.Authority == nil || !env.Authority(s.channel, nal.FormulaOfID(s.f)) {
			return fmt.Errorf("%w: channel %q, statement %q", ErrAuthority, s.channel, nal.FormulaOfID(s.f))
		}
		return nil

	case RuleSubPrin:
		if cf.Kind != nal.FSpeaksFor || cf.HasScope {
			return fmt.Errorf("%w: subprin must conclude unscoped speaksfor", ErrUnsound)
		}
		if cf.A == cf.B || !nal.IsAncestorID(cf.A, cf.B) {
			return fmt.Errorf("%w: %s is not a proper ancestor of %s",
				ErrUnsound, nal.PrinOfID(cf.A), nal.PrinOfID(cf.B))
		}
		return nil

	case RuleTrueI:
		if cf.Kind != nal.FTrue {
			return fmt.Errorf("%w: true-i must conclude true", ErrUnsound)
		}
		return nil

	case RuleCompare:
		if cf.Kind != nal.FCompare {
			return fmt.Errorf("%w: compare must conclude a comparison", ErrUnsound)
		}
		l, r := nal.TermID(cf.L), nal.TermID(cf.R)
		if !constTermID(l) || !constTermID(r) {
			return fmt.Errorf("%w: comparison %q mentions non-constant terms (use an authority)",
				ErrUnsound, nal.FormulaOfID(s.f))
		}
		sign, ok := nal.CompareTerms(nal.TermOfID(l), nal.TermOfID(r))
		if !ok || !cf.Op.Eval(sign) {
			return fmt.Errorf("%w: comparison %q does not hold", ErrUnsound, nal.FormulaOfID(s.f))
		}
		return nil

	case RuleSaysUnit:
		if err := need(1); err != nil {
			return err
		}
		if cf.Kind != nal.FSays || nal.FormulaID(cf.L) != ps[0] {
			return fmt.Errorf("%w: says-unit must wrap the premise", ErrUnsound)
		}
		return nil

	case RuleSaysJoin:
		if err := need(1); err != nil {
			return err
		}
		outer := nal.FormulaNode(ps[0])
		if outer.Kind != nal.FSays {
			return fmt.Errorf("%w: says-join premise must be P says P says S", ErrUnsound)
		}
		inner := nal.FormulaNode(nal.FormulaID(outer.L))
		if inner.Kind != nal.FSays || inner.P != outer.P {
			return fmt.Errorf("%w: says-join premise must be P says P says S", ErrUnsound)
		}
		if cf.Kind != nal.FSays || cf.P != outer.P || cf.L != inner.L {
			return fmt.Errorf("%w: says-join conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleSaysImpE:
		if err := need(2); err != nil {
			return err
		}
		impSays := nal.FormulaNode(ps[0])
		if impSays.Kind != nal.FSays {
			return fmt.Errorf("%w: says-imp-e first premise must be P says (S => T)", ErrUnsound)
		}
		imp := nal.FormulaNode(nal.FormulaID(impSays.L))
		if imp.Kind != nal.FImplies {
			return fmt.Errorf("%w: says-imp-e first premise must contain an implication", ErrUnsound)
		}
		argSays := nal.FormulaNode(ps[1])
		if argSays.Kind != nal.FSays || argSays.P != impSays.P || argSays.L != imp.L {
			return fmt.Errorf("%w: says-imp-e second premise must be P says S", ErrUnsound)
		}
		if cf.Kind != nal.FSays || cf.P != impSays.P || cf.L != imp.R {
			return fmt.Errorf("%w: says-imp-e conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleSpeaksForE:
		if err := need(2); err != nil {
			return err
		}
		sf := nal.FormulaNode(ps[0])
		if sf.Kind != nal.FSpeaksFor {
			return fmt.Errorf("%w: speaksfor-e first premise must be a speaksfor", ErrUnsound)
		}
		sy := nal.FormulaNode(ps[1])
		if sy.Kind != nal.FSays || sy.P != sf.A {
			return fmt.Errorf("%w: speaksfor-e second premise must be A says S", ErrUnsound)
		}
		if sf.HasScope && !nal.PatternMatchesID(sf.Name, nal.FormulaID(sy.L)) {
			return fmt.Errorf("%w: statement %q outside delegation scope %q",
				ErrUnsound, nal.FormulaOfID(nal.FormulaID(sy.L)), sf.Name)
		}
		if cf.Kind != nal.FSays || cf.P != sf.B || cf.L != sy.L {
			return fmt.Errorf("%w: speaksfor-e conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleSpeaksForTrans:
		if err := need(2); err != nil {
			return err
		}
		ab := nal.FormulaNode(ps[0])
		bc := nal.FormulaNode(ps[1])
		if ab.Kind != nal.FSpeaksFor || bc.Kind != nal.FSpeaksFor || ab.B != bc.A {
			return fmt.Errorf("%w: speaksfor-t premises must chain", ErrUnsound)
		}
		if bc.HasScope {
			return fmt.Errorf("%w: speaksfor-t second premise must be unscoped", ErrUnsound)
		}
		if cf.Kind != nal.FSpeaksFor || cf.A != ab.A || cf.B != bc.B ||
			cf.HasScope != ab.HasScope || cf.Name != ab.Name {
			return fmt.Errorf("%w: speaksfor-t conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleHandoff:
		if err := need(1); err != nil {
			return err
		}
		sy := nal.FormulaNode(ps[0])
		if sy.Kind != nal.FSays {
			return fmt.Errorf("%w: handoff premise must be C says (A speaksfor B)", ErrUnsound)
		}
		sf := nal.FormulaNode(nal.FormulaID(sy.L))
		if sf.Kind != nal.FSpeaksFor {
			return fmt.Errorf("%w: handoff premise must contain a speaksfor", ErrUnsound)
		}
		if !nal.IsAncestorID(sy.P, sf.B) && !trustedID(env, sy.P) {
			return fmt.Errorf("%w: %s neither owns %s nor is a trust root",
				ErrUnsound, nal.PrinOfID(sy.P), nal.PrinOfID(sf.B))
		}
		if s.f != nal.FormulaID(sy.L) {
			return fmt.Errorf("%w: handoff conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleAndI:
		if err := need(2); err != nil {
			return err
		}
		if cf.Kind != nal.FAnd || nal.FormulaID(cf.L) != ps[0] || nal.FormulaID(cf.R) != ps[1] {
			return fmt.Errorf("%w: and-i conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleAndE1, RuleAndE2:
		if err := need(1); err != nil {
			return err
		}
		a := nal.FormulaNode(ps[0])
		if a.Kind != nal.FAnd {
			return fmt.Errorf("%w: and-e premise must be a conjunction", ErrUnsound)
		}
		want := a.L
		if s.rule == RuleAndE2 {
			want = a.R
		}
		if s.f != nal.FormulaID(want) {
			return fmt.Errorf("%w: and-e conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleOrI1, RuleOrI2:
		if err := need(1); err != nil {
			return err
		}
		if cf.Kind != nal.FOr {
			return fmt.Errorf("%w: or-i must conclude a disjunction", ErrUnsound)
		}
		want := cf.L
		if s.rule == RuleOrI2 {
			want = cf.R
		}
		if nal.FormulaID(want) != ps[0] {
			return fmt.Errorf("%w: or-i premise mismatch", ErrUnsound)
		}
		return nil

	case RuleOrE:
		if err := need(1); err != nil {
			return err
		}
		o := nal.FormulaNode(ps[0])
		if o.Kind != nal.FOr {
			return fmt.Errorf("%w: or-e premise must be a disjunction", ErrUnsound)
		}
		if len(s.sub) != 2 {
			return fmt.Errorf("%w: or-e needs two subproofs", ErrUnsound)
		}
		if s.sub[0].hyp != nal.FormulaID(o.L) || s.sub[1].hyp != nal.FormulaID(o.R) {
			return fmt.Errorf("%w: or-e subproof hypotheses must be the disjuncts", ErrUnsound)
		}
		for i := range s.sub {
			if err := checkSubC(&s.sub[i], s.f, credIDs, env, res); err != nil {
				return err
			}
		}
		return nil

	case RuleImpI:
		if err := need(0); err != nil {
			return err
		}
		if cf.Kind != nal.FImplies {
			return fmt.Errorf("%w: imp-i must conclude an implication", ErrUnsound)
		}
		if len(s.sub) != 1 || s.sub[0].hyp != nal.FormulaID(cf.L) {
			return fmt.Errorf("%w: imp-i needs one subproof hypothesizing the antecedent", ErrUnsound)
		}
		return checkSubC(&s.sub[0], nal.FormulaID(cf.R), credIDs, env, res)

	case RuleImpE:
		if err := need(2); err != nil {
			return err
		}
		imp := nal.FormulaNode(ps[0])
		if imp.Kind != nal.FImplies || nal.FormulaID(imp.L) != ps[1] {
			return fmt.Errorf("%w: imp-e premises must be S => T and S", ErrUnsound)
		}
		if s.f != nal.FormulaID(imp.R) {
			return fmt.Errorf("%w: imp-e conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleNotNotI:
		if err := need(1); err != nil {
			return err
		}
		if cf.Kind != nal.FNot {
			return fmt.Errorf("%w: notnot-i conclusion mismatch", ErrUnsound)
		}
		inner := nal.FormulaNode(nal.FormulaID(cf.L))
		if inner.Kind != nal.FNot || nal.FormulaID(inner.L) != ps[0] {
			return fmt.Errorf("%w: notnot-i conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleNotE:
		if err := need(2); err != nil {
			return err
		}
		n := nal.FormulaNode(ps[0])
		if n.Kind != nal.FNot || nal.FormulaID(n.L) != ps[1] {
			return fmt.Errorf("%w: not-e premises must be not S and S", ErrUnsound)
		}
		if cf.Kind != nal.FFalse {
			return fmt.Errorf("%w: not-e must conclude false", ErrUnsound)
		}
		return nil

	case RuleFalseE:
		if err := need(1); err != nil {
			return err
		}
		if nal.FormulaNode(ps[0]).Kind != nal.FFalse {
			return fmt.Errorf("%w: false-e premise must be false", ErrUnsound)
		}
		return nil

	case RuleSaysFalseE:
		if err := need(1); err != nil {
			return err
		}
		sy := nal.FormulaNode(ps[0])
		if sy.Kind != nal.FSays || nal.FormulaNode(nal.FormulaID(sy.L)).Kind != nal.FFalse {
			return fmt.Errorf("%w: says-false-e premise must be P says false", ErrUnsound)
		}
		if cf.Kind != nal.FSays || cf.P != sy.P {
			return fmt.Errorf("%w: says-false-e conclusion must stay within the speaker's worldview", ErrUnsound)
		}
		return nil

	case RuleSaysAndI:
		if err := need(2); err != nil {
			return err
		}
		a := nal.FormulaNode(ps[0])
		b := nal.FormulaNode(ps[1])
		if a.Kind != nal.FSays || b.Kind != nal.FSays || a.P != b.P {
			return fmt.Errorf("%w: says-and-i premises must share a speaker", ErrUnsound)
		}
		if cf.Kind != nal.FSays || cf.P != a.P {
			return fmt.Errorf("%w: says-and-i conclusion mismatch", ErrUnsound)
		}
		body := nal.FormulaNode(nal.FormulaID(cf.L))
		if body.Kind != nal.FAnd || body.L != a.L || body.R != b.L {
			return fmt.Errorf("%w: says-and-i conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleSaysAndE1, RuleSaysAndE2:
		if err := need(1); err != nil {
			return err
		}
		sy := nal.FormulaNode(ps[0])
		if sy.Kind != nal.FSays {
			return fmt.Errorf("%w: says-and-e premise must be P says (S and T)", ErrUnsound)
		}
		a := nal.FormulaNode(nal.FormulaID(sy.L))
		if a.Kind != nal.FAnd {
			return fmt.Errorf("%w: says-and-e premise must contain a conjunction", ErrUnsound)
		}
		want := a.L
		if s.rule == RuleSaysAndE2 {
			want = a.R
		}
		if cf.Kind != nal.FSays || cf.P != sy.P || cf.L != want {
			return fmt.Errorf("%w: says-and-e conclusion mismatch", ErrUnsound)
		}
		return nil
	}
	return fmt.Errorf("%w: unknown rule %q", ErrUnsound, s.rule)
}

func trustedID(env *Env, p nal.PrinID) bool {
	if len(env.TrustRoots) == 0 {
		return false
	}
	prin := nal.PrinOfID(p)
	for _, r := range env.TrustRoots {
		if nal.IsAncestor(r, prin) {
			return true
		}
	}
	return false
}

// constTermID mirrors constTerm over the DAG.
func constTermID(id nal.TermID) bool {
	switch nal.TermNode(id).Kind {
	case nal.TInt, nal.TStr, nal.TTime:
		return true
	}
	return false
}

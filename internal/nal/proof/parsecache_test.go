package proof

import (
	"fmt"
	"testing"
)

func TestParseMemoized(t *testing.T) {
	src := "0. label #0 : alice says hello\n1. says-join 0 : alice says hello\n"
	p1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("byte-identical source did not return the shared proof")
	}
	// Different text (even semantically equal) parses fresh.
	p3, err := Parse(src + "\n")
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("distinct source text unexpectedly shared a proof")
	}
}

func TestParseCacheBounded(t *testing.T) {
	// Overfill every shard; the cache must stay within its global cap.
	for i := 0; i < parseCacheShards*parseCacheShardCap*2; i++ {
		if _, err := Parse(fmt.Sprintf("0. true-i %d : true", i)); err != nil {
			// The step number field is ignored by the parser, so these are
			// distinct texts of the same proof.
			t.Fatal(err)
		}
	}
	total := 0
	for i := range parseTab {
		sh := &parseTab[i]
		sh.mu.RLock()
		if len(sh.m) != len(sh.order) {
			t.Errorf("shard %d: map %d entries, order %d", i, len(sh.m), len(sh.order))
		}
		total += len(sh.m)
		sh.mu.RUnlock()
	}
	if total > parseCacheShards*parseCacheShardCap {
		t.Errorf("parse cache holds %d entries, cap %d", total, parseCacheShards*parseCacheShardCap)
	}
}

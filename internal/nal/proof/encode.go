package proof

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/nal"
)

// Parse reads a proof in the textual exchange format produced by
// Proof.String. Each step is a line
//
//	N. rule [#cred|@channel] [premise ...] : formula
//
// and a hypothetical subproof is introduced by an "assume : formula" line
// followed by its steps indented two further spaces. Premise -1 names the
// hypothesis of the enclosing subproof.
func Parse(src string) (*Proof, error) {
	var lines []string
	for _, l := range strings.Split(src, "\n") {
		if strings.TrimSpace(l) != "" {
			lines = append(lines, l)
		}
	}
	steps, rest, err := parseFrame(lines, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("proof: unexpected line %q", rest[0])
	}
	return &Proof{Steps: steps}, nil
}

// MustParse is Parse that panics on error, for proof literals in tests.
func MustParse(src string) *Proof {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func indentOf(line string) int {
	n := 0
	for n < len(line) && line[n] == ' ' {
		n++
	}
	return n / 2
}

func parseFrame(lines []string, indent int) ([]Step, []string, error) {
	var steps []Step
	for len(lines) > 0 {
		line := lines[0]
		ind := indentOf(line)
		if ind < indent {
			break
		}
		body := strings.TrimSpace(line)
		isAssume := strings.HasPrefix(body, "assume ") || strings.HasPrefix(body, "assume:")
		if isAssume && ind <= indent {
			// A sibling subproof of the enclosing step; the caller's
			// parseSubproofs handles it.
			break
		}
		if ind > indent || isAssume {
			// Subproofs attach to the most recent step.
			if len(steps) == 0 {
				return nil, nil, fmt.Errorf("proof: subproof with no owning step at %q", line)
			}
			sub, rest, err := parseSubproofs(lines, indent+1)
			if err != nil {
				return nil, nil, err
			}
			steps[len(steps)-1].Sub = sub
			lines = rest
			continue
		}
		s, err := parseStep(body)
		if err != nil {
			return nil, nil, err
		}
		steps = append(steps, s)
		lines = lines[1:]
	}
	return steps, lines, nil
}

func parseSubproofs(lines []string, indent int) ([]Subproof, []string, error) {
	var subs []Subproof
	for len(lines) > 0 {
		body := strings.TrimSpace(lines[0])
		if indentOf(lines[0]) != indent || !strings.HasPrefix(body, "assume") {
			break
		}
		_, formulaText, ok := strings.Cut(body, ":")
		if !ok {
			return nil, nil, fmt.Errorf("proof: malformed assume line %q", lines[0])
		}
		hyp, err := nal.Parse(strings.TrimSpace(formulaText))
		if err != nil {
			return nil, nil, fmt.Errorf("proof: bad hypothesis: %w", err)
		}
		lines = lines[1:]
		steps, rest, err := parseFrame(lines, indent)
		if err != nil {
			return nil, nil, err
		}
		subs = append(subs, Subproof{Hyp: hyp, Steps: steps})
		lines = rest
	}
	return subs, lines, nil
}

func parseStep(body string) (Step, error) {
	head, formulaText, ok := strings.Cut(body, " : ")
	if !ok {
		return Step{}, fmt.Errorf("proof: malformed step %q (missing ' : ')", body)
	}
	f, err := nal.Parse(strings.TrimSpace(formulaText))
	if err != nil {
		return Step{}, fmt.Errorf("proof: bad formula in %q: %w", body, err)
	}
	fields := strings.Fields(head)
	if len(fields) < 2 {
		return Step{}, fmt.Errorf("proof: malformed step header %q", head)
	}
	// fields[0] is the step number (ignored; order is positional).
	s := Step{Rule: Rule(fields[1]), F: f}
	for _, fd := range fields[2:] {
		switch {
		case strings.HasPrefix(fd, "#"):
			n, err := strconv.Atoi(fd[1:])
			if err != nil {
				return Step{}, fmt.Errorf("proof: bad credential index %q", fd)
			}
			s.Label = n
		case strings.HasPrefix(fd, "@"):
			s.Channel = fd[1:]
		default:
			n, err := strconv.Atoi(fd)
			if err != nil {
				return Step{}, fmt.Errorf("proof: bad premise %q", fd)
			}
			s.Premises = append(s.Premises, n)
		}
	}
	return s, nil
}

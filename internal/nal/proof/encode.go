package proof

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/nal"
)

// Parse reads a proof in the textual exchange format produced by
// Proof.String. Each step is a line
//
//	N. rule [#cred|@channel] [premise ...] : formula
//
// and a hypothetical subproof is introduced by an "assume : formula" line
// followed by its steps indented two further spaces. Premise -1 names the
// hypothesis of the enclosing subproof.
//
// Parse memoizes: re-parsing byte-identical source returns the same
// immutable *Proof, so a proof shipped repeatedly as text (§2.6's exchange
// format) pays lexing, compilation, and fingerprinting once. Proofs are
// immutable from birth — callers must not modify Steps — which the rest of
// the system already assumes for registered proofs.
func Parse(src string) (*Proof, error) {
	sh := &parseTab[nal.HashString(src)&(parseCacheShards-1)]
	sh.mu.RLock()
	p := sh.m[src]
	sh.mu.RUnlock()
	if p != nil {
		return p, nil
	}
	p, err := parseText(src)
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	if prev, ok := sh.m[src]; ok {
		p = prev // a racing parse won; share its proof
	} else {
		if sh.m == nil {
			sh.m = map[string]*Proof{}
		}
		if len(sh.order) >= parseCacheShardCap {
			delete(sh.m, sh.order[0])
			sh.order = sh.order[1:]
		}
		sh.m[src] = p
		sh.order = append(sh.order, src)
	}
	sh.mu.Unlock()
	return p, nil
}

// The parse cache is sharded and FIFO-capped; eviction only drops the memo,
// never invalidates anything (hash-cons handles are process-stable).
const (
	parseCacheShards   = 16
	parseCacheShardCap = 64
)

type parseShard struct {
	mu    sync.RWMutex
	m     map[string]*Proof
	order []string
}

var parseTab [parseCacheShards]parseShard

// parseText is the uncached parser core (the fuzzer targets it directly).
func parseText(src string) (*Proof, error) {
	var lines []string
	for _, l := range strings.Split(src, "\n") {
		if strings.TrimSpace(l) != "" {
			lines = append(lines, l)
		}
	}
	steps, rest, err := parseFrame(lines, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("proof: unexpected line %q", rest[0])
	}
	return &Proof{Steps: steps}, nil
}

// MustParse is Parse that panics on error, for proof literals in tests.
func MustParse(src string) *Proof {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ruleTokenOK restricts rule names to bare words so every parsed step
// prints back to a parseable header.
func ruleTokenOK(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' || c == '-' || c == '_') {
			return false
		}
	}
	return true
}

func indentOf(line string) int {
	n := 0
	for n < len(line) && line[n] == ' ' {
		n++
	}
	return n / 2
}

func parseFrame(lines []string, indent int) ([]Step, []string, error) {
	var steps []Step
	for len(lines) > 0 {
		line := lines[0]
		ind := indentOf(line)
		if ind < indent {
			break
		}
		body := strings.TrimSpace(line)
		isAssume := strings.HasPrefix(body, "assume ") || strings.HasPrefix(body, "assume:")
		if isAssume && ind <= indent {
			// A sibling subproof of the enclosing step; the caller's
			// parseSubproofs handles it.
			break
		}
		if ind > indent || isAssume {
			// Subproofs attach to the most recent step.
			if len(steps) == 0 {
				return nil, nil, fmt.Errorf("proof: subproof with no owning step at %q", line)
			}
			sub, rest, err := parseSubproofs(lines, indent+1)
			if err != nil {
				return nil, nil, err
			}
			if len(rest) == len(lines) {
				// Nothing consumed: the line is indented past this frame but
				// is not an assume at the subproof level (e.g. an
				// over-indented step). Without this check the loop would spin
				// forever on the same line.
				return nil, nil, fmt.Errorf("proof: misindented line %q", line)
			}
			steps[len(steps)-1].Sub = sub
			lines = rest
			continue
		}
		s, err := parseStep(body)
		if err != nil {
			return nil, nil, err
		}
		steps = append(steps, s)
		lines = lines[1:]
	}
	return steps, lines, nil
}

func parseSubproofs(lines []string, indent int) ([]Subproof, []string, error) {
	var subs []Subproof
	for len(lines) > 0 {
		body := strings.TrimSpace(lines[0])
		if indentOf(lines[0]) != indent || !strings.HasPrefix(body, "assume") {
			break
		}
		_, formulaText, ok := strings.Cut(body, ":")
		if !ok {
			return nil, nil, fmt.Errorf("proof: malformed assume line %q", lines[0])
		}
		hyp, err := nal.Parse(strings.TrimSpace(formulaText))
		if err != nil {
			return nil, nil, fmt.Errorf("proof: bad hypothesis: %w", err)
		}
		lines = lines[1:]
		steps, rest, err := parseFrame(lines, indent)
		if err != nil {
			return nil, nil, err
		}
		subs = append(subs, Subproof{Hyp: hyp, Steps: steps})
		lines = rest
	}
	return subs, lines, nil
}

func parseStep(body string) (Step, error) {
	head, formulaText, ok := strings.Cut(body, " : ")
	if !ok {
		return Step{}, fmt.Errorf("proof: malformed step %q (missing ' : ')", body)
	}
	f, err := nal.Parse(strings.TrimSpace(formulaText))
	if err != nil {
		return Step{}, fmt.Errorf("proof: bad formula in %q: %w", body, err)
	}
	fields := strings.Fields(head)
	if len(fields) < 2 {
		return Step{}, fmt.Errorf("proof: malformed step header %q", head)
	}
	// fields[0] is the step number (ignored; order is positional).
	if !ruleTokenOK(fields[1]) {
		// Unknown rules are tolerated (Check rejects them), but the token
		// must be printable as a bare word or String would emit a header
		// that does not reparse (e.g. a rule containing " : ").
		return Step{}, fmt.Errorf("proof: malformed rule token %q", fields[1])
	}
	s := Step{Rule: Rule(fields[1]), F: f}
	for _, fd := range fields[2:] {
		switch {
		case strings.HasPrefix(fd, "#"):
			n, err := strconv.Atoi(fd[1:])
			if err != nil {
				return Step{}, fmt.Errorf("proof: bad credential index %q", fd)
			}
			s.Label = n
		case strings.HasPrefix(fd, "@"):
			s.Channel = fd[1:]
		default:
			n, err := strconv.Atoi(fd)
			if err != nil {
				return Step{}, fmt.Errorf("proof: bad premise %q", fd)
			}
			s.Premises = append(s.Premises, n)
		}
	}
	return s, nil
}

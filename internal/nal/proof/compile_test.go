package proof

import (
	"fmt"
	"testing"

	"repro/internal/nal"
)

// chainProof builds the Figure 5 delegation chain: n speaksfor hops plus
// the initial statement.
func chainProof(n int) (*Proof, nal.Formula, []nal.Formula) {
	var creds []nal.Formula
	start := nal.Says{P: nal.Name("P0"), F: nal.Pred{Name: "s"}}
	creds = append(creds, start)
	for i := 0; i < n; i++ {
		creds = append(creds, nal.SpeaksFor{
			A: nal.Name(fmt.Sprintf("P%d", i)),
			B: nal.Name(fmt.Sprintf("P%d", i+1)),
		})
	}
	steps := []Step{{Rule: RuleLabel, Label: 0, F: start}}
	cur := nal.Formula(start)
	for i := 0; i < n; i++ {
		steps = append(steps, Step{Rule: RuleLabel, Label: i + 1, F: creds[i+1]})
		cur = nal.Says{P: nal.Name(fmt.Sprintf("P%d", i+1)), F: nal.Pred{Name: "s"}}
		steps = append(steps, Step{
			Rule:     RuleSpeaksForE,
			Premises: []int{len(steps) - 1, len(steps) - 2},
			F:        cur,
		})
	}
	return &Proof{Steps: steps}, cur, creds
}

func TestCompiledMatchesStructural(t *testing.T) {
	for _, src := range proofSeeds {
		p := MustParse(src)
		goal := p.Conclusion()
		env := fuzzEnv(p)
		want, wantErr := checkText(p, goal, env)
		c, err := Compile(p)
		if err != nil {
			t.Fatalf("%q: compile: %v", src, err)
		}
		got, gotErr := c.Check(goal, env)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("%q: structural err=%v, compiled err=%v", src, wantErr, gotErr)
			continue
		}
		if wantErr == nil && got != want {
			t.Errorf("%q: structural %+v, compiled %+v", src, want, got)
		}
	}
}

// TestCompiledCheckZeroAlloc is the tentpole acceptance check: checking a
// compiled proof on the warm path performs zero allocations — which rules
// out text parsing, AST serialization, and canonical-string comparison, all
// of which allocate. Equality is ID equality only.
func TestCompiledCheckZeroAlloc(t *testing.T) {
	pf, goal, creds := chainProof(12)
	env := &Env{Credentials: creds}
	c, err := Compile(pf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Check(goal, env); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Check(goal, env); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("compiled warm check allocates %.1f objects/op, want 0", allocs)
	}
}

// TestCompiledCheckZeroAllocColdMemo repeats the zero-alloc check with the
// memo cleared each run: even the memo-miss path must not allocate on
// success (inserts hit preallocated shard maps after the first run).
func TestCompiledCheckZeroAllocColdMemo(t *testing.T) {
	pf, goal, creds := chainProof(12)
	env := &Env{Credentials: creds}
	c, err := Compile(pf)
	if err != nil {
		t.Fatal(err)
	}
	SetMemoEnabled(false)
	defer SetMemoEnabled(true)
	if _, err := c.Check(goal, env); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Check(goal, env); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("compiled memo-off check allocates %.1f objects/op, want 0", allocs)
	}
}

// subframeProof builds a proof whose single imp-i step carries a subframe
// of width conjunctions — the shape the subproof memo exists for.
func subframeProof(width int) (*Proof, nal.Formula) {
	hyp := nal.MustParse("a")
	var sub []Step
	sub = append(sub, Step{Rule: RuleTrueI, F: nal.TrueF{}})
	cur := nal.Formula(nal.And{L: hyp, R: nal.TrueF{}})
	sub = append(sub, Step{Rule: RuleAndI, Premises: []int{-1, 0}, F: cur})
	for i := 0; i < width; i++ {
		cur = nal.And{L: hyp, R: cur}
		sub = append(sub, Step{Rule: RuleAndI, Premises: []int{-1, len(sub) - 1}, F: cur})
	}
	goal := nal.Implies{L: hyp, R: cur}
	return &Proof{Steps: []Step{{
		Rule: RuleImpI, F: goal,
		Sub: []Subproof{{Hyp: hyp, Steps: sub}},
	}}}, goal
}

func TestCompiledMemoHits(t *testing.T) {
	MemoReset()
	pf, goal := subframeProof(8)
	env := &Env{}
	c, err := Compile(pf)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := c.Check(goal, env)
	if err != nil {
		t.Fatal(err)
	}
	cold := MemoStats()
	if cold.Hits != 0 || cold.Misses != 1 {
		t.Fatalf("cold check: stats %+v, want one miss (the imp-i step)", cold)
	}
	res2, err := c.Check(goal, env)
	if err != nil {
		t.Fatal(err)
	}
	warm := MemoStats()
	if warm.Hits != 1 {
		t.Errorf("warm check hits = %d, want 1", warm.Hits)
	}
	if res2 != res1 {
		t.Errorf("memo hit changed the result: %+v vs %+v", res2, res1)
	}

	// A structurally identical proof compiled from a separate AST reuses
	// the lemma across "requests".
	pf2, goal2 := subframeProof(8)
	c2, err := Compile(pf2)
	if err != nil {
		t.Fatal(err)
	}
	before := MemoStats()
	if _, err := c2.Check(goal2, &Env{}); err != nil {
		t.Fatal(err)
	}
	after := MemoStats()
	if after.Misses != before.Misses || after.Hits != before.Hits+1 {
		t.Errorf("structurally identical proof missed the memo: %+v vs %+v", after, before)
	}
}

// TestCompiledSubproofMemo verifies that sub-carrying steps (imp-i, or-e)
// memoize whole frames: a warm re-check skips the nested steps while the
// reported step count still matches a full walk.
func TestCompiledSubproofMemo(t *testing.T) {
	MemoReset()
	src := "0. imp-i : a => (a and true)\n  assume : a\n  0. true-i : true\n  1. and-i -1 0 : a and true\n"
	p := MustParse(src)
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	goal := p.Conclusion()
	res1, err := c.Check(goal, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := c.Check(goal, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res2 {
		t.Errorf("memoized re-check result %+v differs from cold %+v", res2, res1)
	}
	if res1.Steps != 3 { // imp-i + two subproof steps
		t.Errorf("Steps = %d, want 3", res1.Steps)
	}
	s := MemoStats()
	if s.Hits == 0 {
		t.Error("sub-carrying step was not memoized")
	}
}

// TestCompiledLabelStepsNotMemoized pins the memo's environment rule:
// credential-dependent steps re-check every time, so swapping the
// credential list flips the verdict even on a memo-warm proof.
func TestCompiledLabelStepsNotMemoized(t *testing.T) {
	pf, goal, creds := chainProof(4)
	c, err := Compile(pf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Check(goal, &Env{Credentials: creds}); err != nil {
		t.Fatal(err)
	}
	// Warm memo, wrong credentials: must fail.
	bad := make([]nal.Formula, len(creds))
	copy(bad, creds)
	bad[0] = nal.MustParse("Other says s")
	if _, err := c.Check(goal, &Env{Credentials: bad}); err == nil {
		t.Error("check passed with swapped credentials on a memo-warm proof")
	}
	// And with the right ones again: still passes.
	if _, err := c.Check(goal, &Env{Credentials: creds}); err != nil {
		t.Errorf("re-check with correct credentials failed: %v", err)
	}
}

// TestCheckRoutesThroughCompiled confirms the public Check uses the
// compiled representation (the Proof caches it) and produces identical
// results to the structural reference.
func TestCheckRoutesThroughCompiled(t *testing.T) {
	pf, goal, creds := chainProof(6)
	env := &Env{Credentials: creds}
	res, err := Check(pf, goal, env)
	if err != nil {
		t.Fatal(err)
	}
	if c, cerr := pf.Compiled(); cerr != nil || c == nil {
		t.Fatalf("Check did not populate the compiled form: %v", cerr)
	}
	ref, err := checkText(pf, goal, env)
	if err != nil {
		t.Fatal(err)
	}
	if res != ref {
		t.Errorf("Check %+v differs from structural reference %+v", res, ref)
	}
	if c, _ := pf.Compiled(); c.Len() != pf.Len() {
		t.Errorf("Compiled.Len() = %d, Proof.Len() = %d", c.Len(), pf.Len())
	}
}

// TestCompiledLabelIndexWidth: a credential index wider than 32 bits must
// not be remapped by compilation — the compiled checker has to agree with
// the structural reference on out-of-range labels.
func TestCompiledLabelIndexWidth(t *testing.T) {
	f := nal.MustParse("ok(1)")
	p := &Proof{Steps: []Step{{Rule: RuleLabel, Label: 1 << 32, F: f}}}
	env := &Env{Credentials: []nal.Formula{f}} // credential #0 matches; #2^32 must not
	if _, err := checkText(p, f, env); err == nil {
		t.Fatal("structural checker accepted an out-of-range label")
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Check(f, env); err == nil {
		t.Fatal("compiled checker accepted an out-of-range label the reference rejects")
	}
}

// TestCompiledAuthorityRevalidation: authority steps are consulted on every
// compiled check, memo or not — the §2.7 no-caching rule for dynamic state.
func TestCompiledAuthorityRevalidation(t *testing.T) {
	goal := nal.MustParse("Clock says ok")
	p := &Proof{Steps: []Step{{Rule: RuleAuthority, Channel: "clock", F: goal}}}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	allow := true
	env := &Env{Authority: func(ch string, f nal.Formula) bool {
		calls++
		if ch != "clock" || !f.Equal(goal) {
			t.Errorf("authority consulted with %q, %q", ch, f)
		}
		return allow
	}}
	for i := 0; i < 3; i++ {
		res, err := c.Check(goal, env)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cacheable {
			t.Error("authority-dependent proof reported cacheable")
		}
	}
	if calls != 3 {
		t.Errorf("authority consulted %d times over 3 checks, want 3", calls)
	}
	allow = false
	if _, err := c.Check(goal, env); err == nil {
		t.Error("check passed after the authority withdrew")
	}
}

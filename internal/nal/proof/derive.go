package proof

import (
	"fmt"

	"repro/internal/nal"
)

// Deriver is a heuristic, goal-directed proof constructor. Clients (never
// guards) use it to assemble a proof of a goal formula from their available
// credentials and known authorities. Derivation is bounded and incomplete —
// NAL proof search is undecidable in general — but it covers the shapes that
// arise in practice: credential import, delegation chains, subprincipal and
// handoff reasoning, conjunction splitting, and authority references.
type Deriver struct {
	// Creds are the credentials (labels) available to the client, in the
	// order they will be presented to the guard.
	Creds []nal.Formula
	// Authority maps a formula to the channel of an authority willing to
	// affirm it live, if any. Proofs that use it become non-cacheable.
	Authority func(f nal.Formula) (channel string, ok bool)
	// TrustRoots are principals whose delegation statements the verifier
	// accepts axiomatically (typically the Nexus kernel and the TPM); the
	// checker's Env must list the same roots. This mirrors the trust
	// preamble of goal formulas in §2.5.
	TrustRoots []nal.Principal
	// MaxDepth bounds recursive search; 0 means a sensible default.
	MaxDepth int
}

func (d *Deriver) trusted(p nal.Principal) bool {
	for _, r := range d.TrustRoots {
		if nal.IsAncestor(r, p) {
			return true
		}
	}
	return false
}

// Derive constructs a proof of goal, or reports failure. goal must be
// ground (apply the guard substitution first).
func (d *Deriver) Derive(goal nal.Formula) (*Proof, error) {
	if !nal.Ground(goal) {
		return nil, fmt.Errorf("proof: cannot derive non-ground goal %q", goal)
	}
	depth := d.MaxDepth
	if depth <= 0 {
		depth = 8
	}
	b := &builder{d: d, index: map[dkey]int{}, visiting: map[dkey]bool{}}
	if _, ok := b.derive(goal, depth); !ok {
		return nil, fmt.Errorf("proof: no derivation found for %q", goal)
	}
	return &Proof{Steps: b.steps}, nil
}

// builder accumulates steps for one proof frame, deduplicating by
// hash-consed formula identity — search state is keyed by FormulaID, so no
// formula is serialized during derivation. When the cons table is saturated
// the key falls back to the interned canonical string.
type builder struct {
	d        *Deriver
	steps    []Step
	index    map[dkey]int
	visiting map[dkey]bool
	hyp      nal.Formula // local hypothesis for subproof frames
}

// dkey identifies a formula equality class during search: the hash-cons
// handle when available, the canonical string otherwise.
type dkey struct {
	id nal.FormulaID
	s  string
}

func deriveKey(f nal.Formula) dkey {
	if id, ok := nal.IDOf(f); ok {
		return dkey{id: id}
	}
	return dkey{s: nal.KeyOf(f)}
}

func (b *builder) add(s Step) int {
	key := deriveKey(s.F)
	if i, ok := b.index[key]; ok {
		return i
	}
	b.steps = append(b.steps, s)
	i := len(b.steps) - 1
	b.index[key] = i
	return i
}

// derive returns the index of a step concluding goal, creating steps as
// needed. The boolean reports success.
func (b *builder) derive(goal nal.Formula, depth int) (int, bool) {
	key := deriveKey(goal)
	if i, ok := b.index[key]; ok {
		return i, true
	}
	if depth <= 0 || b.visiting[key] {
		return 0, false
	}
	b.visiting[key] = true
	defer delete(b.visiting, key)

	// Direct credential.
	for i, c := range b.d.Creds {
		if c.Equal(goal) {
			return b.add(Step{Rule: RuleLabel, Label: i, F: goal}), true
		}
	}

	switch g := goal.(type) {
	case nal.TrueF:
		return b.add(Step{Rule: RuleTrueI, F: goal}), true

	case nal.Compare:
		if constTerm(g.L) && constTerm(g.R) {
			if sign, ok := nal.CompareTerms(g.L, g.R); ok && g.Op.Eval(sign) {
				return b.add(Step{Rule: RuleCompare, F: goal}), true
			}
		}

	case nal.And:
		if li, ok := b.derive(g.L, depth-1); ok {
			if ri, ok := b.derive(g.R, depth-1); ok {
				return b.add(Step{Rule: RuleAndI, Premises: []int{li, ri}, F: goal}), true
			}
		}

	case nal.Or:
		if li, ok := b.derive(g.L, depth-1); ok {
			return b.add(Step{Rule: RuleOrI1, Premises: []int{li}, F: goal}), true
		}
		if ri, ok := b.derive(g.R, depth-1); ok {
			return b.add(Step{Rule: RuleOrI2, Premises: []int{ri}, F: goal}), true
		}

	case nal.Not:
		if inner, ok := g.F.(nal.Not); ok {
			if i, ok := b.derive(inner.F, depth-1); ok {
				return b.add(Step{Rule: RuleNotNotI, Premises: []int{i}, F: goal}), true
			}
		}

	case nal.Implies:
		// imp-i with a hypothetical subproof in a fresh frame.
		sub := &builder{d: b.d, index: map[dkey]int{}, visiting: map[dkey]bool{}, hyp: g.L}
		if _, ok := sub.derive(g.R, depth-1); ok {
			return b.add(Step{
				Rule: RuleImpI, F: goal,
				Sub: []Subproof{{Hyp: g.L, Steps: sub.steps}},
			}), true
		}

	case nal.SpeaksFor:
		if i, ok := b.deriveSpeaksFor(g, depth); ok {
			return i, true
		}

	case nal.Says:
		if i, ok := b.deriveSays(g, depth); ok {
			return i, true
		}
	}

	// Hypothesis of the enclosing subproof.
	if b.hyp != nil && b.hyp.Equal(goal) {
		// Premise -1 denotes the hypothesis; wrap it through a trivial
		// reiteration using and-i/and-e would be circular, so subproof
		// frames simply permit -1 references at use sites. Represent the
		// reiteration as an and of the hypothesis with true, then project.
		ti := b.add(Step{Rule: RuleTrueI, F: nal.TrueF{}})
		ai := b.add(Step{Rule: RuleAndI, Premises: []int{-1, ti}, F: nal.And{L: goal, R: nal.TrueF{}}})
		return b.add(Step{Rule: RuleAndE1, Premises: []int{ai}, F: goal}), true
	}

	// Live authority.
	if b.d.Authority != nil {
		if ch, ok := b.d.Authority(goal); ok {
			return b.add(Step{Rule: RuleAuthority, Channel: ch, F: goal}), true
		}
	}
	return 0, false
}

func (b *builder) deriveSpeaksFor(g nal.SpeaksFor, depth int) (int, bool) {
	// Subprincipal axiom.
	if g.On == nil && !g.A.EqualPrin(g.B) && nal.IsAncestor(g.A, g.B) {
		return b.add(Step{Rule: RuleSubPrin, F: g}), true
	}
	// Handoff: some owner of B said the delegation.
	for i, c := range b.d.Creds {
		sy, ok := c.(nal.Says)
		if !ok {
			continue
		}
		sf, ok := sy.F.(nal.SpeaksFor)
		if !ok || !sf.Equal(g) || !nal.IsAncestor(sy.P, sf.B) {
			continue
		}
		li := b.add(Step{Rule: RuleLabel, Label: i, F: c})
		return b.add(Step{Rule: RuleHandoff, Premises: []int{li}, F: g}), true
	}
	// Transitivity through a credential A speaksfor M.
	for i, c := range b.d.Creds {
		sf, ok := c.(nal.SpeaksFor)
		if !ok || !sf.A.EqualPrin(g.A) || sf.B.EqualPrin(g.B) {
			continue
		}
		if (sf.On == nil) != (g.On == nil) || (sf.On != nil && sf.On.Pred != g.On.Pred) {
			continue
		}
		rest := nal.SpeaksFor{A: sf.B, B: g.B}
		if ri, ok := b.derive(rest, depth-1); ok {
			li := b.add(Step{Rule: RuleLabel, Label: i, F: c})
			return b.add(Step{Rule: RuleSpeaksForTrans, Premises: []int{li, ri}, F: g}), true
		}
	}
	return 0, false
}

// delegation is a candidate "Q speaksfor P" edge the deriver can justify,
// together with a recipe for materializing the speaksfor step.
type delegation struct {
	from  nal.Principal
	scope *nal.Pattern
	build func() int // emits the speaksfor step, returns its index
}

// delegationsTo enumerates the ways some other principal may speak for p:
// direct speaksfor credentials, owner or trust-root handoffs, and the
// subprincipal axiom from p's ancestors.
func (b *builder) delegationsTo(p nal.Principal) []delegation {
	var out []delegation
	for i, c := range b.d.Creds {
		i := i // capture for closures
		switch v := c.(type) {
		case nal.SpeaksFor:
			if v.B.EqualPrin(p) {
				out = append(out, delegation{from: v.A, scope: v.On, build: func() int {
					return b.add(Step{Rule: RuleLabel, Label: i, F: v})
				}})
			}
		case nal.Says:
			sf, ok := v.F.(nal.SpeaksFor)
			if !ok || !sf.B.EqualPrin(p) {
				continue
			}
			if !nal.IsAncestor(v.P, sf.B) && !b.d.trusted(v.P) {
				continue
			}
			out = append(out, delegation{from: sf.A, scope: sf.On, build: func() int {
				li := b.add(Step{Rule: RuleLabel, Label: i, F: v})
				return b.add(Step{Rule: RuleHandoff, Premises: []int{li}, F: sf})
			}})
		}
	}
	// Ancestors speak for their subprincipals.
	anc := p
	for {
		s, ok := anc.(nal.Sub)
		if !ok {
			break
		}
		anc = s.Parent
		parent := anc
		out = append(out, delegation{from: parent, build: func() int {
			return b.add(Step{Rule: RuleSubPrin, F: nal.SpeaksFor{A: parent, B: p}})
		}})
	}
	return out
}

// projectConjunct emits says-and-e steps extracting want from the credential
// sy (credIdx), when want is a conjunct of sy's body.
func (b *builder) projectConjunct(credIdx int, sy nal.Says, want nal.Formula) (int, bool) {
	if !containsConjunct(sy.F, want) {
		return 0, false
	}
	cur := sy.F
	curIdx := b.add(Step{Rule: RuleLabel, Label: credIdx, F: sy})
	for !cur.Equal(want) {
		a := cur.(nal.And)
		if containsConjunct(a.L, want) {
			cur = a.L
			curIdx = b.add(Step{Rule: RuleSaysAndE1, Premises: []int{curIdx}, F: nal.Says{P: sy.P, F: cur}})
		} else {
			cur = a.R
			curIdx = b.add(Step{Rule: RuleSaysAndE2, Premises: []int{curIdx}, F: nal.Says{P: sy.P, F: cur}})
		}
	}
	return curIdx, true
}

func containsConjunct(f, want nal.Formula) bool {
	if f.Equal(want) {
		return true
	}
	if a, ok := f.(nal.And); ok {
		return containsConjunct(a.L, want) || containsConjunct(a.R, want)
	}
	return false
}

func (b *builder) deriveSays(g nal.Says, depth int) (int, bool) {
	// says-and-i: split a conjunction under the modality.
	if a, ok := g.F.(nal.And); ok {
		if li, ok := b.derive(nal.Says{P: g.P, F: a.L}, depth-1); ok {
			if ri, ok := b.derive(nal.Says{P: g.P, F: a.R}, depth-1); ok {
				return b.add(Step{Rule: RuleSaysAndI, Premises: []int{li, ri}, F: g}), true
			}
		}
	}
	// says-and-e: project the statement out of a wider conjunction
	// credential by the same speaker.
	for i, c := range b.d.Creds {
		sy, ok := c.(nal.Says)
		if !ok || !sy.P.EqualPrin(g.P) {
			continue
		}
		if idx, ok := b.projectConjunct(i, sy, g.F); ok {
			return idx, true
		}
	}
	// Delegation: derive Q says S for some Q that speaks for P.
	for _, del := range b.delegationsTo(g.P) {
		if del.from.EqualPrin(g.P) {
			continue
		}
		if del.scope != nil && !del.scope.Matches(g.F) {
			continue
		}
		if si, ok := b.derive(nal.Says{P: del.from, F: g.F}, depth-1); ok {
			sfi := del.build()
			return b.add(Step{Rule: RuleSpeaksForE, Premises: []int{sfi, si}, F: g}), true
		}
	}
	// says-imp-e: a credential P says (X => S) closes the gap.
	for i, c := range b.d.Creds {
		sy, ok := c.(nal.Says)
		if !ok || !sy.P.EqualPrin(g.P) {
			continue
		}
		imp, ok := sy.F.(nal.Implies)
		if !ok || !imp.R.Equal(g.F) {
			continue
		}
		if ai, ok := b.derive(nal.Says{P: g.P, F: imp.L}, depth-1); ok {
			li := b.add(Step{Rule: RuleLabel, Label: i, F: c})
			return b.add(Step{Rule: RuleSaysImpE, Premises: []int{li, ai}, F: g}), true
		}
	}
	// says-unit: the body holds outright.
	if bi, ok := b.derive(g.F, depth-1); ok {
		return b.add(Step{Rule: RuleSaysUnit, Premises: []int{bi}, F: g}), true
	}
	// Live authority for the whole statement.
	if b.d.Authority != nil {
		if ch, ok := b.d.Authority(nal.Formula(g)); ok {
			return b.add(Step{Rule: RuleAuthority, Channel: ch, F: g}), true
		}
	}
	return 0, false
}

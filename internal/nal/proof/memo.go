package proof

import (
	"sync"
	"sync/atomic"

	"repro/internal/cachestat"
	"repro/internal/nal"
)

// The subproof memo table records rule applications that have been checked
// and are *environment-independent*: their validity is a pure function of
// the hash-consed identities involved, not of the credential list, trust
// roots, or any live authority. An entry keyed by
//
//	(rule, premise count, subproof count, premise IDs, conclusion ID)
//
// asserts "a valid, self-contained application of rule deriving this
// conclusion from these premises has been checked in this process". Because
// FormulaIDs are exact identities (hashcons.go), the key admits no
// collisions, and because entries are written only after a successful check
// of a step whose nested frames contain no label, authority, or
// trust-root-dependent handoff steps, a hit is valid for every request and
// every process sharing the credential chain — the cross-request "lemma"
// reuse of §2.9 lifted from one guard's cache to the whole proof pipeline.
//
// For steps carrying subproofs (imp-i, or-e) the memo behaves as a lemma
// database: a hit certifies the conclusion's derivability and skips the
// nested frames entirely, even if the presented subproof differs from the
// one originally checked. This preserves the guard-relevant property (the
// conclusion has a checked, self-contained derivation) while not re-walking
// proof text; callers that need strict proof-object validation (the
// differential fuzzer) disable the memo with SetMemoEnabled.
//
// Invalidation: never needed for correctness. Keys are pure structural
// identities — changing a goal changes the goal's ID, revoking a credential
// changes what resolveCreds returns, and label/authority/handoff steps are
// re-checked on every evaluation — so entries can only be evicted for
// memory, never staleness. Shards are cleared wholesale when full.

type memoKey struct {
	rule     Rule
	np, nsub uint8
	p0, p1   nal.FormulaID
	f        nal.FormulaID
}

type memoVal struct {
	// extra is the number of nested subproof steps covered by the entry,
	// added to Result.Steps on a hit so step accounting matches a full walk.
	extra int32
}

const (
	memoShardCount = 64
	memoShardCap   = 4096
)

type memoShard struct {
	mu sync.RWMutex
	m  map[memoKey]memoVal
}

var (
	memoTab     [memoShardCount]memoShard
	memoStats   cachestat.Counters
	memoEnabled atomic.Bool
)

func init() { memoEnabled.Store(true) }

// SetMemoEnabled toggles the subproof memo (default on). The differential
// fuzzer turns it off to compare the compiled checker against the
// structural checker step for step.
func SetMemoEnabled(on bool) { memoEnabled.Store(on) }

func (k *memoKey) shard() *memoShard {
	h := uint32(k.f)*0x9e3779b1 ^ uint32(k.p0)*0x85ebca6b ^ uint32(k.p1)
	return &memoTab[h&(memoShardCount-1)]
}

func memoLookup(k *memoKey) (memoVal, bool) {
	if !memoEnabled.Load() {
		return memoVal{}, false
	}
	sh := k.shard()
	sh.mu.RLock()
	v, ok := sh.m[*k]
	sh.mu.RUnlock()
	memoStats.Lookup(ok)
	return v, ok
}

// memoInsert runs only on a memo miss (and the rare shard reset): the
// allocation is amortized across every later hit.
//
//nexus:alloc-ok
func memoInsert(k *memoKey, v memoVal) {
	if !memoEnabled.Load() {
		return
	}
	sh := k.shard()
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = map[memoKey]memoVal{}
	} else if len(sh.m) >= memoShardCap {
		// Entries are pure, so clearing is always safe; wholesale reset
		// beats per-entry eviction bookkeeping at this granularity.
		memoStats.Evicted(uint64(len(sh.m)))
		sh.m = map[memoKey]memoVal{}
	}
	sh.m[*k] = v
	sh.mu.Unlock()
}

// MemoStats reports subproof-memo lookups, hits, misses, and evictions in
// the shape shared with the guard and decision caches.
func MemoStats() cachestat.Stats { return memoStats.Snapshot() }

// MemoReset clears the memo table and its statistics (tests, benchmarks).
func MemoReset() {
	for i := range memoTab {
		sh := &memoTab[i]
		sh.mu.Lock()
		sh.m = nil
		sh.mu.Unlock()
	}
	memoStats.Reset()
}

// MemoLen reports the number of memoized rule applications.
func MemoLen() int {
	n := 0
	for i := range memoTab {
		sh := &memoTab[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

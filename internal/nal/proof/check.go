package proof

import (
	"errors"
	"fmt"

	"repro/internal/nal"
)

// Env supplies the checker with everything outside the proof itself.
type Env struct {
	// Credentials are the authenticated labels the client presented. The
	// guard has already verified their provenance (labelstore channel or
	// certificate signature); the checker only matches formulas.
	Credentials []nal.Formula
	// Authority validates a RuleAuthority step by querying the live
	// authority listening on the named channel. A nil Authority rejects all
	// authority steps. Answers are valid only for this invocation and are
	// never cached across checks (§2.7).
	Authority func(channel string, f nal.Formula) bool
	// TrustRoots are principals whose delegation statements (handoffs) are
	// accepted even for principals they do not own — the trust preamble of
	// the goal formula (§2.5). Typically the Nexus kernel principal.
	TrustRoots []nal.Principal
	// CredentialIDs optionally carries the hash-cons handles of Credentials,
	// position for position. Callers that hold credentials long-term (the
	// kernel proof store) precompute them once so the compiled checker skips
	// per-call interning; when the lengths disagree the field is ignored.
	CredentialIDs []nal.FormulaID
}

func (e *Env) trusted(p nal.Principal) bool {
	for _, r := range e.TrustRoots {
		if nal.IsAncestor(r, p) {
			return true
		}
	}
	return false
}

// Result reports the outcome of a successful check.
type Result struct {
	// Cacheable is true when the proof references no dynamic system state
	// (no authority steps), so the decision may enter the kernel decision
	// cache (§2.8).
	Cacheable bool
	// AuthorityCalls counts live authority consultations performed.
	AuthorityCalls int
	// Steps is the total number of rule applications checked.
	Steps int
}

// Common checker errors.
var (
	ErrUnsound    = errors.New("proof: unsound step")
	ErrNoCred     = errors.New("proof: missing credential")
	ErrAuthority  = errors.New("proof: authority denied or unavailable")
	ErrWrongGoal  = errors.New("proof: conclusion does not discharge goal")
	ErrEmptyProof = errors.New("proof: empty proof")
)

// Check validates the proof and confirms that its conclusion equals goal.
// Checking is total: it runs in time linear in proof size regardless of
// input. On success the Result reports cacheability.
//
// Check routes through the compiled representation (Compile): formulas are
// resolved to hash-consed IDs once per proof, every equality in the step
// checks is an integer compare, and pure rule applications are memoized
// across requests. Proofs the compiler rejects — and any proof once the
// hash-cons table saturates — take the structural path below, which is the
// semantic reference.
func Check(p *Proof, goal nal.Formula, env *Env) (Result, error) {
	if p == nil || len(p.Steps) == 0 {
		return Result{}, ErrEmptyProof
	}
	if c, err := p.Compiled(); err == nil {
		return c.Check(goal, env)
	}
	return checkText(p, goal, env)
}

// CheckStructural validates the proof with the structural (AST-equality)
// reference checker, bypassing compilation and the memo. The ablation
// benchmarks use it as the seed baseline; the fuzzer differentially tests
// the compiled checker against it.
func CheckStructural(p *Proof, goal nal.Formula, env *Env) (Result, error) {
	return checkText(p, goal, env)
}

// checkText is the structural (AST-equality) checker: the reference
// implementation the compiled checker is differentially fuzzed against, and
// the fallback when compilation is unavailable.
func checkText(p *Proof, goal nal.Formula, env *Env) (Result, error) {
	var res Result
	if p == nil || len(p.Steps) == 0 {
		return res, ErrEmptyProof
	}
	if env == nil {
		env = &Env{}
	}
	if err := checkFrame(p.Steps, nil, env, &res); err != nil {
		return res, err
	}
	if !p.Conclusion().Equal(goal) {
		return res, fmt.Errorf("%w: proved %q, goal %q", ErrWrongGoal, p.Conclusion(), goal)
	}
	res.Cacheable = res.AuthorityCalls == 0
	return res, nil
}

// checkFrame validates a step sequence. hyp is the local hypothesis (premise
// index -1) inside a subproof, nil at top level.
func checkFrame(steps []Step, hyp nal.Formula, env *Env, res *Result) error {
	prem := func(i int, at int) (nal.Formula, error) {
		if i == -1 {
			if hyp == nil {
				return nil, fmt.Errorf("%w: step %d references hypothesis outside subproof", ErrUnsound, at)
			}
			return hyp, nil
		}
		if i < 0 || i >= at {
			return nil, fmt.Errorf("%w: step %d references out-of-range premise %d", ErrUnsound, at, i)
		}
		return steps[i].F, nil
	}
	for at, s := range steps {
		res.Steps++
		if s.F == nil {
			return fmt.Errorf("%w: step %d has no conclusion", ErrUnsound, at)
		}
		if !nal.Ground(s.F) {
			return fmt.Errorf("%w: step %d conclusion %q is not ground", ErrUnsound, at, s.F)
		}
		ps := make([]nal.Formula, len(s.Premises))
		for j, i := range s.Premises {
			f, err := prem(i, at)
			if err != nil {
				return err
			}
			ps[j] = f
		}
		if err := checkStep(s, ps, env, res); err != nil {
			return fmt.Errorf("step %d (%s): %w", at, s.Rule, err)
		}
	}
	return nil
}

func checkStep(s Step, ps []nal.Formula, env *Env, res *Result) error {
	need := func(n int) error {
		if len(ps) != n {
			return fmt.Errorf("%w: expected %d premises, have %d", ErrUnsound, n, len(ps))
		}
		return nil
	}
	switch s.Rule {
	case RuleLabel:
		if s.Label < 0 || s.Label >= len(env.Credentials) {
			return fmt.Errorf("%w: credential #%d not supplied", ErrNoCred, s.Label)
		}
		if !env.Credentials[s.Label].Equal(s.F) {
			return fmt.Errorf("%w: credential #%d is %q, step claims %q",
				ErrNoCred, s.Label, env.Credentials[s.Label], s.F)
		}
		return nil

	case RuleAuthority:
		res.AuthorityCalls++
		if env.Authority == nil || !env.Authority(s.Channel, s.F) {
			return fmt.Errorf("%w: channel %q, statement %q", ErrAuthority, s.Channel, s.F)
		}
		return nil

	case RuleSubPrin:
		sf, ok := s.F.(nal.SpeaksFor)
		if !ok || sf.On != nil {
			return fmt.Errorf("%w: subprin must conclude unscoped speaksfor", ErrUnsound)
		}
		if sf.A.EqualPrin(sf.B) || !nal.IsAncestor(sf.A, sf.B) {
			return fmt.Errorf("%w: %s is not a proper ancestor of %s", ErrUnsound, sf.A, sf.B)
		}
		return nil

	case RuleTrueI:
		if _, ok := s.F.(nal.TrueF); !ok {
			return fmt.Errorf("%w: true-i must conclude true", ErrUnsound)
		}
		return nil

	case RuleCompare:
		c, ok := s.F.(nal.Compare)
		if !ok {
			return fmt.Errorf("%w: compare must conclude a comparison", ErrUnsound)
		}
		if !constTerm(c.L) || !constTerm(c.R) {
			return fmt.Errorf("%w: comparison %q mentions non-constant terms (use an authority)", ErrUnsound, c)
		}
		sign, ok := nal.CompareTerms(c.L, c.R)
		if !ok || !c.Op.Eval(sign) {
			return fmt.Errorf("%w: comparison %q does not hold", ErrUnsound, c)
		}
		return nil

	case RuleSaysUnit:
		if err := need(1); err != nil {
			return err
		}
		sy, ok := s.F.(nal.Says)
		if !ok || !sy.F.Equal(ps[0]) {
			return fmt.Errorf("%w: says-unit must wrap the premise", ErrUnsound)
		}
		return nil

	case RuleSaysJoin:
		if err := need(1); err != nil {
			return err
		}
		outer, ok := ps[0].(nal.Says)
		if !ok {
			return fmt.Errorf("%w: says-join premise must be P says P says S", ErrUnsound)
		}
		inner, ok := outer.F.(nal.Says)
		if !ok || !inner.P.EqualPrin(outer.P) {
			return fmt.Errorf("%w: says-join premise must be P says P says S", ErrUnsound)
		}
		if !s.F.Equal(nal.Says{P: outer.P, F: inner.F}) {
			return fmt.Errorf("%w: says-join conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleSaysImpE:
		if err := need(2); err != nil {
			return err
		}
		impSays, ok := ps[0].(nal.Says)
		if !ok {
			return fmt.Errorf("%w: says-imp-e first premise must be P says (S => T)", ErrUnsound)
		}
		imp, ok := impSays.F.(nal.Implies)
		if !ok {
			return fmt.Errorf("%w: says-imp-e first premise must contain an implication", ErrUnsound)
		}
		argSays, ok := ps[1].(nal.Says)
		if !ok || !argSays.P.EqualPrin(impSays.P) || !argSays.F.Equal(imp.L) {
			return fmt.Errorf("%w: says-imp-e second premise must be P says S", ErrUnsound)
		}
		if !s.F.Equal(nal.Says{P: impSays.P, F: imp.R}) {
			return fmt.Errorf("%w: says-imp-e conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleSpeaksForE:
		if err := need(2); err != nil {
			return err
		}
		sf, ok := ps[0].(nal.SpeaksFor)
		if !ok {
			return fmt.Errorf("%w: speaksfor-e first premise must be a speaksfor", ErrUnsound)
		}
		sy, ok := ps[1].(nal.Says)
		if !ok || !sy.P.EqualPrin(sf.A) {
			return fmt.Errorf("%w: speaksfor-e second premise must be A says S", ErrUnsound)
		}
		if sf.On != nil && !sf.On.Matches(sy.F) {
			return fmt.Errorf("%w: statement %q outside delegation scope %q", ErrUnsound, sy.F, sf.On.Pred)
		}
		if !s.F.Equal(nal.Says{P: sf.B, F: sy.F}) {
			return fmt.Errorf("%w: speaksfor-e conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleSpeaksForTrans:
		if err := need(2); err != nil {
			return err
		}
		ab, ok1 := ps[0].(nal.SpeaksFor)
		bc, ok2 := ps[1].(nal.SpeaksFor)
		if !ok1 || !ok2 || !ab.B.EqualPrin(bc.A) {
			return fmt.Errorf("%w: speaksfor-t premises must chain", ErrUnsound)
		}
		if bc.On != nil {
			return fmt.Errorf("%w: speaksfor-t second premise must be unscoped", ErrUnsound)
		}
		want := nal.SpeaksFor{A: ab.A, B: bc.B, On: ab.On}
		if !s.F.Equal(want) {
			return fmt.Errorf("%w: speaksfor-t conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleHandoff:
		if err := need(1); err != nil {
			return err
		}
		sy, ok := ps[0].(nal.Says)
		if !ok {
			return fmt.Errorf("%w: handoff premise must be C says (A speaksfor B)", ErrUnsound)
		}
		sf, ok := sy.F.(nal.SpeaksFor)
		if !ok {
			return fmt.Errorf("%w: handoff premise must contain a speaksfor", ErrUnsound)
		}
		if !nal.IsAncestor(sy.P, sf.B) && !env.trusted(sy.P) {
			return fmt.Errorf("%w: %s neither owns %s nor is a trust root", ErrUnsound, sy.P, sf.B)
		}
		if !s.F.Equal(sf) {
			return fmt.Errorf("%w: handoff conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleAndI:
		if err := need(2); err != nil {
			return err
		}
		if !s.F.Equal(nal.And{L: ps[0], R: ps[1]}) {
			return fmt.Errorf("%w: and-i conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleAndE1, RuleAndE2:
		if err := need(1); err != nil {
			return err
		}
		a, ok := ps[0].(nal.And)
		if !ok {
			return fmt.Errorf("%w: and-e premise must be a conjunction", ErrUnsound)
		}
		want := a.L
		if s.Rule == RuleAndE2 {
			want = a.R
		}
		if !s.F.Equal(want) {
			return fmt.Errorf("%w: and-e conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleOrI1, RuleOrI2:
		if err := need(1); err != nil {
			return err
		}
		o, ok := s.F.(nal.Or)
		if !ok {
			return fmt.Errorf("%w: or-i must conclude a disjunction", ErrUnsound)
		}
		want := o.L
		if s.Rule == RuleOrI2 {
			want = o.R
		}
		if !want.Equal(ps[0]) {
			return fmt.Errorf("%w: or-i premise mismatch", ErrUnsound)
		}
		return nil

	case RuleOrE:
		if err := need(1); err != nil {
			return err
		}
		o, ok := ps[0].(nal.Or)
		if !ok {
			return fmt.Errorf("%w: or-e premise must be a disjunction", ErrUnsound)
		}
		if len(s.Sub) != 2 {
			return fmt.Errorf("%w: or-e needs two subproofs", ErrUnsound)
		}
		if !s.Sub[0].Hyp.Equal(o.L) || !s.Sub[1].Hyp.Equal(o.R) {
			return fmt.Errorf("%w: or-e subproof hypotheses must be the disjuncts", ErrUnsound)
		}
		for i := range s.Sub {
			if err := checkSub(s.Sub[i], s.F, env, res); err != nil {
				return err
			}
		}
		return nil

	case RuleImpI:
		if err := need(0); err != nil {
			return err
		}
		imp, ok := s.F.(nal.Implies)
		if !ok {
			return fmt.Errorf("%w: imp-i must conclude an implication", ErrUnsound)
		}
		if len(s.Sub) != 1 || !s.Sub[0].Hyp.Equal(imp.L) {
			return fmt.Errorf("%w: imp-i needs one subproof hypothesizing the antecedent", ErrUnsound)
		}
		return checkSub(s.Sub[0], imp.R, env, res)

	case RuleImpE:
		if err := need(2); err != nil {
			return err
		}
		imp, ok := ps[0].(nal.Implies)
		if !ok || !imp.L.Equal(ps[1]) {
			return fmt.Errorf("%w: imp-e premises must be S => T and S", ErrUnsound)
		}
		if !s.F.Equal(imp.R) {
			return fmt.Errorf("%w: imp-e conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleNotNotI:
		if err := need(1); err != nil {
			return err
		}
		if !s.F.Equal(nal.Not{F: nal.Not{F: ps[0]}}) {
			return fmt.Errorf("%w: notnot-i conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleNotE:
		if err := need(2); err != nil {
			return err
		}
		n, ok := ps[0].(nal.Not)
		if !ok || !n.F.Equal(ps[1]) {
			return fmt.Errorf("%w: not-e premises must be not S and S", ErrUnsound)
		}
		if _, ok := s.F.(nal.FalseF); !ok {
			return fmt.Errorf("%w: not-e must conclude false", ErrUnsound)
		}
		return nil

	case RuleFalseE:
		if err := need(1); err != nil {
			return err
		}
		if _, ok := ps[0].(nal.FalseF); !ok {
			return fmt.Errorf("%w: false-e premise must be false", ErrUnsound)
		}
		return nil

	case RuleSaysFalseE:
		if err := need(1); err != nil {
			return err
		}
		sy, ok := ps[0].(nal.Says)
		if !ok {
			return fmt.Errorf("%w: says-false-e premise must be P says false", ErrUnsound)
		}
		if _, ok := sy.F.(nal.FalseF); !ok {
			return fmt.Errorf("%w: says-false-e premise must be P says false", ErrUnsound)
		}
		out, ok := s.F.(nal.Says)
		if !ok || !out.P.EqualPrin(sy.P) {
			return fmt.Errorf("%w: says-false-e conclusion must stay within the speaker's worldview", ErrUnsound)
		}
		return nil

	case RuleSaysAndI:
		if err := need(2); err != nil {
			return err
		}
		a, ok1 := ps[0].(nal.Says)
		b, ok2 := ps[1].(nal.Says)
		if !ok1 || !ok2 || !a.P.EqualPrin(b.P) {
			return fmt.Errorf("%w: says-and-i premises must share a speaker", ErrUnsound)
		}
		if !s.F.Equal(nal.Says{P: a.P, F: nal.And{L: a.F, R: b.F}}) {
			return fmt.Errorf("%w: says-and-i conclusion mismatch", ErrUnsound)
		}
		return nil

	case RuleSaysAndE1, RuleSaysAndE2:
		if err := need(1); err != nil {
			return err
		}
		sy, ok := ps[0].(nal.Says)
		if !ok {
			return fmt.Errorf("%w: says-and-e premise must be P says (S and T)", ErrUnsound)
		}
		a, ok := sy.F.(nal.And)
		if !ok {
			return fmt.Errorf("%w: says-and-e premise must contain a conjunction", ErrUnsound)
		}
		want := a.L
		if s.Rule == RuleSaysAndE2 {
			want = a.R
		}
		if !s.F.Equal(nal.Says{P: sy.P, F: want}) {
			return fmt.Errorf("%w: says-and-e conclusion mismatch", ErrUnsound)
		}
		return nil
	}
	return fmt.Errorf("%w: unknown rule %q", ErrUnsound, s.Rule)
}

func checkSub(sub Subproof, want nal.Formula, env *Env, res *Result) error {
	if len(sub.Steps) == 0 {
		// An empty subproof is permitted when the hypothesis itself is the
		// required conclusion.
		if sub.Hyp.Equal(want) {
			return nil
		}
		return fmt.Errorf("%w: empty subproof does not conclude %q", ErrUnsound, want)
	}
	if err := checkFrame(sub.Steps, sub.Hyp, env, res); err != nil {
		return err
	}
	last := sub.Steps[len(sub.Steps)-1].F
	if !last.Equal(want) {
		return fmt.Errorf("%w: subproof concludes %q, need %q", ErrUnsound, last, want)
	}
	return nil
}

// constTerm reports whether t is a constant literal that the checker may
// compare without consulting an authority.
func constTerm(t nal.Term) bool {
	switch t.(type) {
	case nal.Int, nal.Str, nal.Time:
		return true
	}
	return false
}

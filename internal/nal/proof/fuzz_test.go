package proof

import (
	"strings"
	"testing"

	"repro/internal/nal"
)

// proofSeeds cover every rule family and the subproof grammar.
var proofSeeds = []string{
	"0. label #0 : alice says wantsAccess",
	"0. true-i : true",
	"0. compare : 1 < 2",
	"0. authority @clock : Clock says ok",
	"0. subprin : a speaksfor a.b",
	"0. label #0 : P0 says s\n1. label #1 : P0 speaksfor P1\n2. speaksfor-e 1 0 : P1 says s",
	"0. label #0 : a\n1. notnot-i 0 : not (not a)",
	"0. label #0 : a\n1. and-i 0 0 : a and a\n2. and-e1 1 : a",
	"0. label #0 : p says (q and r)\n1. says-and-e1 0 : p says q",
	"0. label #0 : kernel says (a speaksfor kernel.x)\n1. handoff 0 : a speaksfor kernel.x",
	"0. imp-i : a => a\n  assume : a\n",
	"0. label #0 : a or b\n1. or-e 0 : c\n  assume : a\n  0. label #1 : c\n  assume : b\n  0. label #1 : c\n",
	"0. label #0 : a\n1. or-i1 0 : a or b",
	"0. label #0 : not a\n1. label #1 : a\n2. not-e 0 1 : false\n3. false-e 2 : anything",
	"0. label #0 : p says false\n1. says-false-e 0 : p says q",
	"0. label #0 : p says (a => b)\n1. label #1 : p says a\n2. says-imp-e 0 1 : p says b",
	"0. imp-i : a => (a and true)\n  assume : a\n  0. true-i : true\n  1. and-i -1 0 : a and true\n",
}

// fuzzEnv synthesizes a credential list satisfying the proof's label steps
// (first claim per index wins, so inconsistent proofs still fail in both
// checkers identically) and an authority that affirms everything.
func fuzzEnv(p *Proof) *Env {
	creds := map[int]nal.Formula{}
	max := -1
	var walk func(steps []Step)
	walk = func(steps []Step) {
		for _, s := range steps {
			if s.Rule == RuleLabel && s.Label >= 0 && s.Label < 64 {
				if _, ok := creds[s.Label]; !ok {
					creds[s.Label] = s.F
				}
				if s.Label > max {
					max = s.Label
				}
			}
			for _, sub := range s.Sub {
				walk(sub.Steps)
			}
		}
	}
	walk(p.Steps)
	list := make([]nal.Formula, max+1)
	for i := range list {
		if f, ok := creds[i]; ok {
			list[i] = f
		} else {
			list[i] = nal.TrueF{}
		}
	}
	return &Env{
		Credentials: list,
		Authority:   func(string, nal.Formula) bool { return true },
		TrustRoots:  []nal.Principal{nal.Name("fuzzroot")},
	}
}

// FuzzParseProof asserts the proof text format's core contracts: Parse
// never panics or hangs, accepted proofs round-trip through String with
// String a fixed point, and the compiled checker agrees with the structural
// checker on every accepted input.
func FuzzParseProof(f *testing.F) {
	for _, s := range proofSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return // bound deeply nested inputs; hang-freedom is covered below this size
		}
		// parseText is the uncached core: the round-trip property must hold
		// for the parser itself, not for the memo in Parse.
		p1, err := parseText(src)
		if err != nil {
			return
		}
		s1 := p1.String()
		p2, err := parseText(s1)
		if err != nil {
			t.Fatalf("reparse of printed proof failed: %v\nprinted:\n%s", err, s1)
		}
		if s2 := p2.String(); s2 != s1 {
			t.Fatalf("String not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", s1, s2)
		}

		if len(p1.Steps) == 0 {
			return
		}
		goal := p1.Conclusion()
		env := fuzzEnv(p1)

		// Differential: the compiled checker must agree with the structural
		// reference. The memo is disabled so lemma reuse cannot mask strict
		// proof-object divergences; the memo's own contract is covered by
		// the valid-proof pass below.
		SetMemoEnabled(false)
		refRes, refErr := checkText(p1, goal, env)
		c, cerr := Compile(p1)
		if cerr == nil {
			cRes, cErr := c.Check(goal, env)
			if (refErr == nil) != (cErr == nil) {
				t.Fatalf("checker divergence: structural err=%v, compiled err=%v\nproof:\n%s", refErr, cErr, s1)
			}
			if refErr == nil {
				if cRes != refRes {
					t.Fatalf("result divergence: structural %+v, compiled %+v\nproof:\n%s", refRes, cRes, s1)
				}
			}
		} else if refErr == nil && cerr != ErrConsSaturated {
			// Everything the structural checker accepts must compile, except
			// when a very long fuzz run has filled the process-wide cons
			// table — saturation is the documented graceful-degradation path.
			t.Fatalf("valid proof failed to compile: %v\nproof:\n%s", cerr, s1)
		}
		SetMemoEnabled(true)

		// Memo pass: a structurally valid proof stays valid with the memo
		// on, first cold then warm, with identical step accounting.
		if refErr == nil && cerr == nil {
			for pass := 0; pass < 2; pass++ {
				res, err := c.Check(goal, env)
				if err != nil {
					t.Fatalf("memo pass %d rejected a valid proof: %v\nproof:\n%s", pass, err, s1)
				}
				if res != refRes {
					t.Fatalf("memo pass %d result %+v differs from %+v\nproof:\n%s", pass, res, refRes, s1)
				}
			}
		}

		// The parsed and reparsed proofs must check identically (textual
		// round-trip preserves semantics, not just syntax).
		rtRes, rtErr := checkText(p2, goal, fuzzEnv(p2))
		if (refErr == nil) != (rtErr == nil) || (refErr == nil && rtRes != refRes) {
			t.Fatalf("round-trip changed check outcome: %v/%+v vs %v/%+v\nproof:\n%s",
				refErr, refRes, rtErr, rtRes, s1)
		}
	})
}

// TestParseMisindented pins the fix for the parser hang: a line indented
// past its frame that is not a subproof must be rejected, not spun on.
func TestParseMisindented(t *testing.T) {
	for _, src := range []string{
		"0. true-i : true\n    1. true-i : true",
		"0. true-i : true\n  1. true-i : true",
		"0. imp-i : a => a\n  assume : a\n      0. true-i : true",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted misindented proof %q", src)
		}
	}
}

// TestParseProofSeeds keeps every fuzz seed parseable and round-tripping,
// so the corpus cannot rot.
func TestParseProofSeeds(t *testing.T) {
	for _, src := range proofSeeds {
		p, err := Parse(src)
		if err != nil {
			t.Errorf("seed %q: %v", src, err)
			continue
		}
		s1 := p.String()
		p2, err := Parse(s1)
		if err != nil {
			t.Errorf("seed %q: reparse: %v", src, err)
			continue
		}
		if s2 := p2.String(); s1 != s2 {
			t.Errorf("seed %q: String not a fixed point:\n%s\nvs\n%s", src, s1, s2)
		}
		if !strings.Contains(src, "assume") && len(p.Steps) == 0 {
			t.Errorf("seed %q parsed to an empty proof", src)
		}
	}
}

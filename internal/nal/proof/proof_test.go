package proof

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/nal"
)

func f(src string) nal.Formula { return nal.MustParse(src) }

func checkOK(t *testing.T, p *Proof, goal nal.Formula, env *Env) Result {
	t.Helper()
	res, err := Check(p, goal, env)
	if err != nil {
		t.Fatalf("Check failed: %v\nproof:\n%s", err, p)
	}
	return res
}

func TestTrivialAssumption(t *testing.T) {
	goal := f("A says ok")
	p := Assume(0, goal)
	res := checkOK(t, p, goal, &Env{Credentials: []nal.Formula{goal}})
	if !res.Cacheable {
		t.Error("pure label proof should be cacheable")
	}
	if res.Steps != 1 {
		t.Errorf("Steps = %d, want 1", res.Steps)
	}
}

func TestLabelMismatch(t *testing.T) {
	p := Assume(0, f("A says ok"))
	_, err := Check(p, f("A says ok"), &Env{Credentials: []nal.Formula{f("A says no")}})
	if !errors.Is(err, ErrNoCred) {
		t.Errorf("want ErrNoCred, got %v", err)
	}
	_, err = Check(p, f("A says ok"), &Env{})
	if !errors.Is(err, ErrNoCred) {
		t.Errorf("missing credential: want ErrNoCred, got %v", err)
	}
}

func TestWrongGoal(t *testing.T) {
	cred := f("A says ok")
	p := Assume(0, cred)
	_, err := Check(p, f("B says ok"), &Env{Credentials: []nal.Formula{cred}})
	if !errors.Is(err, ErrWrongGoal) {
		t.Errorf("want ErrWrongGoal, got %v", err)
	}
}

func TestSpeaksForElimination(t *testing.T) {
	creds := []nal.Formula{f("A speaksfor B"), f("A says ok")}
	p := &Proof{Steps: []Step{
		{Rule: RuleLabel, Label: 0, F: creds[0]},
		{Rule: RuleLabel, Label: 1, F: creds[1]},
		{Rule: RuleSpeaksForE, Premises: []int{0, 1}, F: f("B says ok")},
	}}
	checkOK(t, p, f("B says ok"), &Env{Credentials: creds})
}

func TestScopedDelegationEnforced(t *testing.T) {
	creds := []nal.Formula{
		f("NTP speaksfor Server on TimeNow"),
		f("NTP says TimeNow < @2026-03-19"),
		f("NTP says other(x)"),
	}
	good := &Proof{Steps: []Step{
		{Rule: RuleLabel, Label: 0, F: creds[0]},
		{Rule: RuleLabel, Label: 1, F: creds[1]},
		{Rule: RuleSpeaksForE, Premises: []int{0, 1}, F: f("Server says TimeNow < @2026-03-19")},
	}}
	checkOK(t, good, f("Server says TimeNow < @2026-03-19"), &Env{Credentials: creds})

	bad := &Proof{Steps: []Step{
		{Rule: RuleLabel, Label: 0, F: creds[0]},
		{Rule: RuleLabel, Label: 2, F: creds[2]},
		{Rule: RuleSpeaksForE, Premises: []int{0, 1}, F: f("Server says other(x)")},
	}}
	if _, err := Check(bad, f("Server says other(x)"), &Env{Credentials: creds}); !errors.Is(err, ErrUnsound) {
		t.Errorf("out-of-scope delegation must fail, got %v", err)
	}
}

func TestSubprincipalAxiom(t *testing.T) {
	p := &Proof{Steps: []Step{
		{Rule: RuleSubPrin, F: f("kernel speaksfor kernel.ipd.12")},
	}}
	checkOK(t, p, f("kernel speaksfor kernel.ipd.12"), &Env{})

	bad := &Proof{Steps: []Step{
		{Rule: RuleSubPrin, F: f("kernel.ipd.12 speaksfor kernel")},
	}}
	if _, err := Check(bad, f("kernel.ipd.12 speaksfor kernel"), &Env{}); !errors.Is(err, ErrUnsound) {
		t.Errorf("upward subprin must fail, got %v", err)
	}
	improper := &Proof{Steps: []Step{
		{Rule: RuleSubPrin, F: f("kernel speaksfor kernel")},
	}}
	if _, err := Check(improper, f("kernel speaksfor kernel"), &Env{}); !errors.Is(err, ErrUnsound) {
		t.Errorf("reflexive subprin must fail, got %v", err)
	}
}

func TestHandoff(t *testing.T) {
	// FS says /proc/ipd/6 speaksfor FS./dir/file — the §2.6 ownership grant.
	cred := f("FS says /proc/ipd/6 speaksfor FS./dir/file")
	p := &Proof{Steps: []Step{
		{Rule: RuleLabel, Label: 0, F: cred},
		{Rule: RuleHandoff, Premises: []int{0}, F: f("/proc/ipd/6 speaksfor FS./dir/file")},
	}}
	checkOK(t, p, f("/proc/ipd/6 speaksfor FS./dir/file"), &Env{Credentials: []nal.Formula{cred}})

	// A stranger cannot hand off somebody else's identity.
	bad := f("Mallory says Eve speaksfor FS./dir/file")
	p2 := &Proof{Steps: []Step{
		{Rule: RuleLabel, Label: 0, F: bad},
		{Rule: RuleHandoff, Premises: []int{0}, F: f("Eve speaksfor FS./dir/file")},
	}}
	if _, err := Check(p2, f("Eve speaksfor FS./dir/file"), &Env{Credentials: []nal.Formula{bad}}); !errors.Is(err, ErrUnsound) {
		t.Errorf("non-owner handoff must fail, got %v", err)
	}
}

func TestSaysFalseIsLocal(t *testing.T) {
	cred := f("A says false")
	ok := &Proof{Steps: []Step{
		{Rule: RuleLabel, Label: 0, F: cred},
		{Rule: RuleSaysFalseE, Premises: []int{0}, F: f("A says anything")},
	}}
	checkOK(t, ok, f("A says anything"), &Env{Credentials: []nal.Formula{cred}})

	bad := &Proof{Steps: []Step{
		{Rule: RuleLabel, Label: 0, F: cred},
		{Rule: RuleSaysFalseE, Premises: []int{0}, F: f("B says anything")},
	}}
	if _, err := Check(bad, f("B says anything"), &Env{Credentials: []nal.Formula{cred}}); !errors.Is(err, ErrUnsound) {
		t.Errorf("A says false must not contaminate B, got %v", err)
	}
}

func TestAuthorityStepsAreNotCacheable(t *testing.T) {
	goal := f("NTP says TimeNow < @2026-03-19")
	p := &Proof{Steps: []Step{{Rule: RuleAuthority, Channel: "ipc:9", F: goal}}}
	called := 0
	env := &Env{Authority: func(ch string, g nal.Formula) bool {
		called++
		return ch == "ipc:9" && g.Equal(goal)
	}}
	res := checkOK(t, p, goal, env)
	if res.Cacheable {
		t.Error("authority-backed proof must not be cacheable")
	}
	if called != 1 || res.AuthorityCalls != 1 {
		t.Errorf("authority called %d times, result %d", called, res.AuthorityCalls)
	}
	// Authority refusing → check fails.
	env2 := &Env{Authority: func(string, nal.Formula) bool { return false }}
	if _, err := Check(p, goal, env2); !errors.Is(err, ErrAuthority) {
		t.Errorf("want ErrAuthority, got %v", err)
	}
	// No authority configured → reject.
	if _, err := Check(p, goal, &Env{}); !errors.Is(err, ErrAuthority) {
		t.Errorf("nil authority: want ErrAuthority, got %v", err)
	}
}

func TestConjunctionRules(t *testing.T) {
	creds := []nal.Formula{f("a"), f("b")}
	p := &Proof{Steps: []Step{
		{Rule: RuleLabel, Label: 0, F: f("a")},
		{Rule: RuleLabel, Label: 1, F: f("b")},
		{Rule: RuleAndI, Premises: []int{0, 1}, F: f("a and b")},
		{Rule: RuleAndE2, Premises: []int{2}, F: f("b")},
	}}
	checkOK(t, p, f("b"), &Env{Credentials: creds})
}

func TestDisjunctionElimination(t *testing.T) {
	creds := []nal.Formula{f("a or b"), f("a => c"), f("b => c")}
	p := &Proof{Steps: []Step{
		{Rule: RuleLabel, Label: 0, F: f("a or b")},
		{Rule: RuleOrE, Premises: []int{0}, F: f("c"), Sub: []Subproof{
			{Hyp: f("a"), Steps: []Step{
				{Rule: RuleLabel, Label: 1, F: f("a => c")},
				{Rule: RuleImpE, Premises: []int{0, -1}, F: f("c")},
			}},
			{Hyp: f("b"), Steps: []Step{
				{Rule: RuleLabel, Label: 2, F: f("b => c")},
				{Rule: RuleImpE, Premises: []int{0, -1}, F: f("c")},
			}},
		}},
	}}
	checkOK(t, p, f("c"), &Env{Credentials: creds})
}

func TestImplicationIntroduction(t *testing.T) {
	// ⊢ a => a, via an empty subproof (hypothesis is the conclusion).
	p := &Proof{Steps: []Step{
		{Rule: RuleImpI, F: f("a => a"), Sub: []Subproof{{Hyp: f("a")}}},
	}}
	checkOK(t, p, f("a => a"), &Env{})
}

func TestCompareRule(t *testing.T) {
	checkOK(t, &Proof{Steps: []Step{{Rule: RuleCompare, F: f("3 < 5")}}}, f("3 < 5"), &Env{})
	checkOK(t, &Proof{Steps: []Step{{Rule: RuleCompare, F: f(`"a" < "b"`)}}}, f(`"a" < "b"`), &Env{})
	checkOK(t, &Proof{Steps: []Step{{Rule: RuleCompare, F: f("@2026-01-01 < @2026-03-19")}}},
		f("@2026-01-01 < @2026-03-19"), &Env{})
	if _, err := Check(&Proof{Steps: []Step{{Rule: RuleCompare, F: f("5 < 3")}}}, f("5 < 3"), &Env{}); err == nil {
		t.Error("false comparison must fail")
	}
	// Stateful atoms require an authority, not the compare rule.
	if _, err := Check(&Proof{Steps: []Step{{Rule: RuleCompare, F: f("TimeNow < @2026-03-19")}}},
		f("TimeNow < @2026-03-19"), &Env{}); !errors.Is(err, ErrUnsound) {
		t.Errorf("atom comparison must be unsound, got %v", err)
	}
}

func TestSaysJoinAndUnit(t *testing.T) {
	creds := []nal.Formula{f("A says A says s"), f("x")}
	p := &Proof{Steps: []Step{
		{Rule: RuleLabel, Label: 0, F: creds[0]},
		{Rule: RuleSaysJoin, Premises: []int{0}, F: f("A says s")},
		{Rule: RuleLabel, Label: 1, F: f("x")},
		{Rule: RuleSaysUnit, Premises: []int{2}, F: f("Q says x")},
		{Rule: RuleAndI, Premises: []int{1, 3}, F: f("(A says s) and (Q says x)")},
	}}
	checkOK(t, p, f("(A says s) and (Q says x)"), &Env{Credentials: creds})
}

func TestPremiseRangeChecks(t *testing.T) {
	// Forward references and out-of-range premises must fail, not panic.
	bad := []*Proof{
		{Steps: []Step{{Rule: RuleAndE1, Premises: []int{0}, F: f("a")}}},
		{Steps: []Step{{Rule: RuleAndE1, Premises: []int{5}, F: f("a")}}},
		{Steps: []Step{{Rule: RuleAndE1, Premises: []int{-1}, F: f("a")}}},
	}
	for i, p := range bad {
		if _, err := Check(p, f("a"), &Env{}); !errors.Is(err, ErrUnsound) {
			t.Errorf("case %d: want ErrUnsound, got %v", i, err)
		}
	}
}

func TestNonGroundConclusionRejected(t *testing.T) {
	goal := f("?X says ok")
	p := &Proof{Steps: []Step{{Rule: RuleLabel, Label: 0, F: goal}}}
	if _, err := Check(p, goal, &Env{Credentials: []nal.Formula{goal}}); !errors.Is(err, ErrUnsound) {
		t.Errorf("non-ground step must be unsound, got %v", err)
	}
}

func TestDeriveTimeSensitiveFileScenario(t *testing.T) {
	// The §2 worked example: Owner trusts NTP on TimeNow; process 12 wants
	// the file; SafetyCertifier vouches for it.
	creds := []nal.Formula{
		f("Owner says NTP speaksfor Owner on TimeNow"),
		f("/proc/ipd/12 says openFile(\"/secret\")"),
		f("SafetyCertifier says safe(/proc/ipd/12)"),
	}
	authority := func(g nal.Formula) (string, bool) {
		if g.Equal(f("NTP says TimeNow < @2026-03-19")) {
			return "ipc:ntp", true
		}
		return "", false
	}
	goal := f(`(Owner says TimeNow < @2026-03-19) and (/proc/ipd/12 says openFile("/secret")) and (SafetyCertifier says safe(/proc/ipd/12))`)
	d := &Deriver{Creds: creds, Authority: authority}
	p, err := d.Derive(goal)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	env := &Env{Credentials: creds, Authority: func(ch string, g nal.Formula) bool {
		return ch == "ipc:ntp" && g.Equal(f("NTP says TimeNow < @2026-03-19"))
	}}
	res := checkOK(t, p, goal, env)
	if res.Cacheable {
		t.Error("time-dependent proof must not be cacheable")
	}
}

func TestDeriveSafetyCertifierScenario(t *testing.T) {
	// SafetyCertifier says safe(X) via implication from IPC analysis labels.
	analysis := "(not hasPath(/proc/ipd/12, Filesystem)) and (not hasPath(/proc/ipd/12, Nameserver))"
	creds := []nal.Formula{
		f("Nexus says /proc/ipd/30 speaksfor IPCAnalyzer"),
		f("/proc/ipd/30 says (" + analysis + ")"),
		f("SafetyCertifier says ((IPCAnalyzer says (" + analysis + ")) => safe(/proc/ipd/12))"),
	}
	goal := f("SafetyCertifier says safe(/proc/ipd/12)")
	roots := []nal.Principal{nal.Name("Nexus")}
	d := &Deriver{Creds: creds, TrustRoots: roots}
	p, err := d.Derive(goal)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	res := checkOK(t, p, goal, &Env{Credentials: creds, TrustRoots: roots})
	if !res.Cacheable {
		t.Error("static analysis proof should be cacheable")
	}
}

func TestDeriveSubprincipalChain(t *testing.T) {
	creds := []nal.Formula{f("kernel.ipd.7 says ready")}
	d := &Deriver{Creds: creds}
	// kernel speaksfor kernel.ipd.7, so the kernel's processes' statements
	// do NOT flow up; but the kernel's flow down:
	if _, err := d.Derive(f("kernel says ready")); err == nil {
		t.Fatal("must not attribute child statement to parent")
	}
	creds2 := []nal.Formula{f("kernel says ready")}
	d2 := &Deriver{Creds: creds2}
	p, err := d2.Derive(f("kernel.ipd.7 says ready"))
	if err != nil {
		t.Fatalf("Derive parent→child: %v", err)
	}
	checkOK(t, p, f("kernel.ipd.7 says ready"), &Env{Credentials: creds2})
}

func TestDeriveRevocationPattern(t *testing.T) {
	// A says Valid(s) => s, with a revocation authority affirming A says
	// Valid(s) (§2.7).
	creds := []nal.Formula{f("A says (Valid(s) => s)")}
	auth := func(g nal.Formula) (string, bool) {
		if g.Equal(f("A says Valid(s)")) {
			return "ipc:revoke", true
		}
		return "", false
	}
	d := &Deriver{Creds: creds, Authority: auth}
	p, err := d.Derive(f("A says s"))
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	env := &Env{Credentials: creds, Authority: func(ch string, g nal.Formula) bool { return true }}
	res := checkOK(t, p, f("A says s"), env)
	if res.Cacheable {
		t.Error("revocation-checked proof must not be cacheable")
	}
}

func TestProofTextRoundTrip(t *testing.T) {
	creds := []nal.Formula{f("a or b"), f("a => c"), f("b => c")}
	p := &Proof{Steps: []Step{
		{Rule: RuleLabel, Label: 0, F: f("a or b")},
		{Rule: RuleOrE, Premises: []int{0}, F: f("c"), Sub: []Subproof{
			{Hyp: f("a"), Steps: []Step{
				{Rule: RuleLabel, Label: 1, F: f("a => c")},
				{Rule: RuleImpE, Premises: []int{0, -1}, F: f("c")},
			}},
			{Hyp: f("b"), Steps: []Step{
				{Rule: RuleLabel, Label: 2, F: f("b => c")},
				{Rule: RuleImpE, Premises: []int{0, -1}, F: f("c")},
			}},
		}},
	}}
	text := p.String()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse:\n%s\n%v", text, err)
	}
	checkOK(t, q, f("c"), &Env{Credentials: creds})
	if q.Len() != p.Len() {
		t.Errorf("Len changed: %d vs %d", q.Len(), p.Len())
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{
		"0. label : ",
		"0. label #x : a",
		"0. label #0 a",
		"  assume : a",
		"0. label #0 : a\n1. nosuchrule 0 : b",
	}
	for _, src := range bad {
		p, err := Parse(src)
		if err != nil {
			continue
		}
		if _, err := Check(p, p.Conclusion(), &Env{Credentials: []nal.Formula{f("a")}}); err == nil {
			t.Errorf("Parse(%q) produced a checkable proof", src)
		}
	}
}

func TestQuickDerivedProofsCheck(t *testing.T) {
	// Property: whatever Derive produces, Check accepts, and the premise
	// credentials it references exist.
	prins := []string{"A", "B", "C", "root.x", "root.x.y"}
	preds := []string{"p", "q", "r"}
	prop := func(seed int64) bool {
		rnd := seed
		pick := func(n int) int {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			v := int((rnd >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		base := nal.Says{P: nal.MustPrincipal(prins[pick(len(prins))]), F: nal.Pred{Name: preds[pick(len(preds))]}}
		speaker2 := nal.MustPrincipal(prins[pick(len(prins))])
		creds := []nal.Formula{
			base,
			nal.SpeaksFor{A: base.P, B: speaker2},
			f("x => y"),
			f("x"),
		}
		goals := []nal.Formula{
			base,
			nal.Says{P: speaker2, F: base.F},
			nal.And{L: base, R: f("x")},
			f("y"),
			nal.Or{L: base, R: f("nonderivable")},
		}
		goal := goals[pick(len(goals))]
		d := &Deriver{Creds: creds}
		p, err := d.Derive(goal)
		if err != nil {
			// Failure to derive is acceptable; unsoundness is not.
			return true
		}
		_, err = Check(p, goal, &Env{Credentials: creds})
		if err != nil {
			t.Logf("derived proof failed check for %q: %v\n%s", goal, err, p)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestDeriveImplicationGoal(t *testing.T) {
	d := &Deriver{Creds: []nal.Formula{f("b")}}
	p, err := d.Derive(f("a => b"))
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	checkOK(t, p, f("a => b"), &Env{Credentials: []nal.Formula{f("b")}})

	// a => a uses the hypothesis.
	d2 := &Deriver{}
	p2, err := d2.Derive(f("a => a"))
	if err != nil {
		t.Fatalf("Derive a=>a: %v", err)
	}
	checkOK(t, p2, f("a => a"), &Env{})
}

func TestDeriveScopedDelegationFromHandoff(t *testing.T) {
	// Filesystem says NTP speaksfor Filesystem on TimeNow (§2.5 goal
	// discharge).
	creds := []nal.Formula{
		f("Filesystem says NTP speaksfor Filesystem on TimeNow"),
		f("NTP says TimeNow < @2026-03-19"),
	}
	d := &Deriver{Creds: creds}
	goal := f("Filesystem says TimeNow < @2026-03-19")
	p, err := d.Derive(goal)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	checkOK(t, p, goal, &Env{Credentials: creds})
}

func TestProofLenCountsSubproofs(t *testing.T) {
	p := MustParse(strings.TrimSpace(`
0. label #0 : a or b
1. or-e 0 : c
  assume : a
  0. label #1 : a => c
  1. imp-e 0 -1 : c
  assume : b
  0. label #2 : b => c
  1. imp-e 0 -1 : c
`))
	if p.Len() != 6 {
		t.Errorf("Len = %d, want 6", p.Len())
	}
}

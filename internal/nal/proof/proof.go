// Package proof implements NAL proof objects and the proof checker used by
// Nexus guards.
//
// Proof derivation in NAL is undecidable, so the Nexus places the burden of
// proof construction on the client: a principal invoking a guarded operation
// presents an explicit derivation of the goal formula from credentials
// (labels), axioms, and live authority queries. The guard merely checks the
// derivation — a problem linear in proof size (§2.6 of the paper).
//
// A Proof is a sequence of steps; each step names an inference rule, the
// indices of earlier steps it uses as premises, and its conclusion.
// Hypothetical rules (implication introduction, disjunction elimination)
// carry nested subproofs. Check validates every step and reports whether the
// proof is cacheable: proofs that consult authorities reference dynamic
// system state and must be re-validated on every use (§2.7–2.8).
package proof

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"repro/internal/nal"
)

// Rule names an inference rule of the NAL proof system.
type Rule string

// The proof rules. Premise shapes are documented on each rule; see check.go
// for the precise validation.
const (
	// RuleLabel imports credential #Label from the environment. The guard
	// authenticates the label (it came from a labelstore or a verified
	// certificate) before admitting it.
	RuleLabel Rule = "label"
	// RuleAuthority concludes P says S by querying a live authority over an
	// attested IPC channel. Never cacheable.
	RuleAuthority Rule = "authority"
	// RuleSubPrin is the subprincipal axiom: A speaksfor A.t1...tn.
	RuleSubPrin Rule = "subprin"
	// RuleTrueI concludes true from nothing.
	RuleTrueI Rule = "true-i"
	// RuleCompare concludes a ground comparison over constants (no atoms).
	RuleCompare Rule = "compare"
	// RuleSaysUnit: from S conclude P says S (everyone believes derived
	// facts; the unit of the says monad).
	RuleSaysUnit Rule = "says-unit"
	// RuleSaysJoin: from P says P says S conclude P says S.
	RuleSaysJoin Rule = "says-join"
	// RuleSaysImpE: from P says (S => T) and P says S conclude P says T.
	RuleSaysImpE Rule = "says-imp-e"
	// RuleSpeaksForE: from A speaksfor B [on pat] and A says S conclude
	// B says S; with a scope, S must match pat.
	RuleSpeaksForE Rule = "speaksfor-e"
	// RuleSpeaksForTrans: from A speaksfor B and B speaksfor C conclude
	// A speaksfor C. A scope on the first premise carries through.
	RuleSpeaksForTrans Rule = "speaksfor-t"
	// RuleHandoff: from C says (A speaksfor B) where C is B or an ancestor
	// of B, conclude A speaksfor B (delegation by the owner).
	RuleHandoff Rule = "handoff"
	// RuleAndI, RuleAndE1, RuleAndE2 are the conjunction rules.
	RuleAndI  Rule = "and-i"
	RuleAndE1 Rule = "and-e1"
	RuleAndE2 Rule = "and-e2"
	// RuleOrI1, RuleOrI2, RuleOrE are the disjunction rules; or-e carries two
	// hypothetical subproofs.
	RuleOrI1 Rule = "or-i1"
	RuleOrI2 Rule = "or-i2"
	RuleOrE  Rule = "or-e"
	// RuleImpI introduces an implication from a hypothetical subproof;
	// RuleImpE is modus ponens.
	RuleImpI Rule = "imp-i"
	RuleImpE Rule = "imp-e"
	// RuleNotNotI is double negation introduction, the simplest NAL rule
	// (constructive logic lacks the elimination direction).
	RuleNotNotI Rule = "notnot-i"
	// RuleNotE: from not S and S conclude false.
	RuleNotE Rule = "not-e"
	// RuleFalseE is ex falso quodlibet.
	RuleFalseE Rule = "false-e"
	// RuleSaysFalseE: from P says false conclude P says G — damage from a
	// lying principal is confined to its own worldview (§2.1).
	RuleSaysFalseE Rule = "says-false-e"
	// Derived convenience rules for reasoning under says.
	RuleSaysAndI  Rule = "says-and-i"  // P says S, P says T ⊢ P says (S and T)
	RuleSaysAndE1 Rule = "says-and-e1" // P says (S and T) ⊢ P says S
	RuleSaysAndE2 Rule = "says-and-e2" // P says (S and T) ⊢ P says T
)

// Step is one derivation step.
type Step struct {
	Rule     Rule
	Premises []int // indices of earlier steps in the same frame
	F        nal.Formula
	Sub      []Subproof // hypothetical subproofs (imp-i, or-e)
	Label    int        // credential index for RuleLabel
	Channel  string     // authority channel for RuleAuthority
}

// Subproof is a derivation under a local hypothesis. Steps inside the
// subproof may reference the hypothesis as premise index -1 and outer steps
// through Outer offsets resolved by the checker.
type Subproof struct {
	Hyp   nal.Formula
	Steps []Step
}

// Proof is a complete derivation; its conclusion is the formula of the final
// step. Proofs are immutable once parsed or registered: Parse may return a
// shared *Proof for identical text, the kernel proof store and guard cache
// alias registered proofs across requests, and the fingerprint and compiled
// form are computed once — mutating Steps after any of those desynchronizes
// all three. Build a new Proof instead.
type Proof struct {
	Steps []Step

	fpOnce sync.Once
	fp     string

	cOnce    sync.Once
	compiled *Compiled
	cerr     error
}

// Compiled returns the proof's compiled form, translating it on first use
// and caching the result; a kernel setproof warms this so the authorization
// path never compiles. The error (a proof the compiler rejects, or a
// saturated hash-cons table) is sticky, and callers respond by using the
// structural checker instead.
func (p *Proof) Compiled() (*Compiled, error) {
	p.cOnce.Do(func() { p.compiled, p.cerr = Compile(p) })
	return p.compiled, p.cerr
}

// Fingerprint returns a stable hash of the proof's textual form, computed
// once. Guards key their proof caches on it (§2.9), so registered proofs
// must not be mutated afterwards.
func (p *Proof) Fingerprint() string {
	p.fpOnce.Do(func() {
		sum := sha1.Sum([]byte(p.String()))
		p.fp = hex.EncodeToString(sum[:])
	})
	return p.fp
}

// Conclusion returns the formula proved, or nil for an empty proof.
func (p *Proof) Conclusion() nal.Formula {
	if p == nil || len(p.Steps) == 0 {
		return nil
	}
	return p.Steps[len(p.Steps)-1].F
}

// Len returns the number of rule applications in the proof, including
// subproof steps. Figure 5 of the paper plots checking cost against this.
func (p *Proof) Len() int {
	n := 0
	var count func(steps []Step)
	count = func(steps []Step) {
		for _, s := range steps {
			n++
			for _, sub := range s.Sub {
				count(sub.Steps)
			}
		}
	}
	count(p.Steps)
	return n
}

// String renders the proof in its textual exchange format; see Parse.
func (p *Proof) String() string {
	var sb strings.Builder
	writeSteps(&sb, p.Steps, 0)
	return sb.String()
}

func writeSteps(sb *strings.Builder, steps []Step, indent int) {
	pad := strings.Repeat("  ", indent)
	for i, s := range steps {
		fmt.Fprintf(sb, "%s%d. %s", pad, i, s.Rule)
		if s.Rule == RuleLabel {
			fmt.Fprintf(sb, " #%d", s.Label)
		}
		if s.Rule == RuleAuthority {
			fmt.Fprintf(sb, " @%s", s.Channel)
		}
		for _, pr := range s.Premises {
			fmt.Fprintf(sb, " %d", pr)
		}
		fmt.Fprintf(sb, " : %s\n", s.F)
		for _, sub := range s.Sub {
			fmt.Fprintf(sb, "%s  assume : %s\n", pad, sub.Hyp)
			writeSteps(sb, sub.Steps, indent+1)
		}
	}
}

// Assume returns a single-step proof importing credential index i with
// formula f. It is the trivial proof used throughout the microbenchmarks.
func Assume(i int, f nal.Formula) *Proof {
	return &Proof{Steps: []Step{{Rule: RuleLabel, Label: i, F: f}}}
}

package nal

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestKeyOfMatchesString verifies the canonical key equals the printed form
// for a spread of formulas, and that repeated calls return the interned
// string without rebuilding it.
func TestKeyOfMatchesString(t *testing.T) {
	cases := []string{
		"?S says wantsAccess",
		"NTP says TimeNow < @2026-03-19",
		"key:ab12 speaksfor alice on TimeNow",
		`alice says openFile("/dir/file")`,
		"a and b or not c => d",
		"quota(alice) <= 80",
		"[1, 2, \"x\"] = [alice, ?V]",
		"kernel.ipd.12 says (a and hash:ff says b)",
	}
	for _, src := range cases {
		f := MustParse(src)
		if got, want := KeyOf(f), f.String(); got != want {
			t.Errorf("KeyOf(%q) = %q, want %q", src, got, want)
		}
		// Structurally equal but separately built values share the key.
		g := MustParse(src)
		if KeyOf(f) != KeyOf(g) {
			t.Errorf("equal formulas got different keys for %q", src)
		}
		if Hash64(f) != Hash64(g) {
			t.Errorf("equal formulas got different hashes for %q", src)
		}
	}
}

// TestHash64Distinguishes spot-checks that structurally different formulas
// (including cross-kind confusions a naive encoding would merge) hash
// differently.
func TestHash64Distinguishes(t *testing.T) {
	pairs := [][2]string{
		{"a", "a()"}, // both parse to Pred "a"; sanity: equal
		{"a says b", "a says c"},
		{"a speaksfor b", "b speaksfor a"},
		{"a speaksfor b on p", "a speaksfor b"},
		{"x < 5", "x <= 5"},
		{"a and b", "a or b"},
		{`f("ab")`, `f("a", "b")`},
		{"p(a)", "p(\"a\")"},
	}
	for i, pc := range pairs {
		f1, f2 := MustParse(pc[0]), MustParse(pc[1])
		if i == 0 {
			if Hash64(f1) != Hash64(f2) {
				t.Errorf("%q and %q are equal but hash differently", pc[0], pc[1])
			}
			continue
		}
		if Hash64(f1) == Hash64(f2) {
			t.Errorf("%q and %q hash identically", pc[0], pc[1])
		}
	}
}

// TestKeyOfPrin verifies principal keys match String and intern.
func TestKeyOfPrin(t *testing.T) {
	for _, src := range []string{"NTP", "key:ab12", "hash:ff", "kernel.ipd.12", "a.b.c"} {
		p := MustPrincipal(src)
		if KeyOfPrin(p) != p.String() {
			t.Errorf("KeyOfPrin(%q) = %q, want %q", src, KeyOfPrin(p), p.String())
		}
	}
}

// TestTimeRoundTrip pins the Time canonical form: short dates only for
// representable UTC midnights, RFC 3339 with nanoseconds otherwise, always
// reparsing to the same instant.
func TestTimeRoundTrip(t *testing.T) {
	cases := []Time{
		{T: time.Date(2026, 3, 19, 0, 0, 0, 0, time.UTC)},
		{T: time.Date(2026, 3, 19, 15, 4, 5, 0, time.UTC)},
		{T: time.Date(2026, 3, 19, 0, 0, 0, 500_000_000, time.UTC)},
		{T: time.Date(2026, 3, 19, 0, 0, 0, 0, time.FixedZone("", 7*3600))},
		{T: time.Date(2026, 3, 19, 1, 2, 3, 123456789, time.FixedZone("", -5*3600))},
	}
	for _, tc := range cases {
		s := tc.String()
		back, err := ParseTerm(s)
		if err != nil {
			t.Errorf("ParseTerm(%q): %v", s, err)
			continue
		}
		if !back.EqualTerm(tc) {
			t.Errorf("time round-trip %q: got %v, want %v", s, back, tc.T)
		}
	}
}

// TestStringEscapeRoundTrip pins the Str canonical form through the lexer's
// Go-style unescaping.
func TestStringEscapeRoundTrip(t *testing.T) {
	for _, raw := range []string{"plain", `with "quotes"`, "tab\tnewline\n", "unié", `back\slash`} {
		f := Pred{Name: "p", Args: []Term{Str(raw)}}
		back, err := Parse(f.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", f.String(), err)
		}
		if !back.Equal(f) {
			t.Errorf("escape round-trip failed for %q (printed %q)", raw, f.String())
		}
	}
}

// TestKeyOfConcurrent exercises the intern table from many goroutines; run
// with -race.
func TestKeyOfConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f := Pred{Name: fmt.Sprintf("p%d", i%32), Args: []Term{Int(i % 8)}}
				if KeyOf(f) != f.String() {
					t.Error("concurrent KeyOf returned wrong canonical form")
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

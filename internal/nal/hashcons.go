package nal

import (
	"sync"
	"sync/atomic"
)

// This file implements the process-wide hash-cons table behind the compiled
// proof pipeline. Where canon.go memoizes canonical *strings* (KeyOf), this
// table assigns every distinct formula, term, and principal a stable small
// integer handle — FormulaID, TermID, PrinID — such that two values are
// structurally equal exactly when their IDs are equal. Formulas become nodes
// of a shared DAG: a node stores its kind, its children *as IDs*, and a
// pointer to a canonical AST representative, so
//
//   - equality is one integer compare (the proof checker's inner loop),
//   - destructuring is one array index (FormulaNode/TermNode/PrinNode),
//   - groundness is a precomputed bit, and
//   - shared substructure (delegation chains, repeated credentials) is
//     stored once however many proofs mention it.
//
// IDs are never reused and nodes are never mutated after publication, so a
// handle embedded in a compiled proof stays valid for the process lifetime.
//
// Memory bound: the table is capped (SetConsLimit, default 1<<20 nodes per
// kind). At the cap, consing fails softly — IDOf returns ok=false and every
// caller (proof.Compile, the guard's key builder) falls back to the
// structural-equality path, so an adversarial stream of distinct formulas
// degrades throughput, never correctness or memory. Values that reach the
// table via registered proofs are pinned by the kernel proof store anyway;
// hash-consing them adds a bounded constant factor, not a new leak class.

// FormulaID is a stable handle for a formula equality class. 0 is invalid.
type FormulaID uint32

// TermID is a stable handle for a term equality class. 0 is invalid.
type TermID uint32

// PrinID is a stable handle for a principal equality class. 0 is invalid.
type PrinID uint32

// FKind enumerates formula node kinds for destructuring by ID.
type FKind uint8

// Formula node kinds.
const (
	FInvalid FKind = iota
	FPred
	FSays
	FSpeaksFor
	FCompare
	FNot
	FAnd
	FOr
	FImplies
	FFalse
	FTrue
)

// TKind enumerates term node kinds.
type TKind uint8

// Term node kinds.
const (
	TInvalid TKind = iota
	TStr
	TInt
	TTime
	TAtom
	TVar
	TPrin
	TList
	TFunc
)

// PKind enumerates principal node kinds.
type PKind uint8

// Principal node kinds.
const (
	PInvalid PKind = iota
	PName
	PKey
	PHash
	PSub
	PVar
)

// FNode is the immutable DAG node of a formula. Field use by kind:
//
//	FPred       Name, Args (term IDs)
//	FSays       P (speaker), L (body formula)
//	FSpeaksFor  A, B (principals), Name+HasScope (delegation pattern)
//	FCompare    Op, L, R (term IDs)
//	FNot        L (formula)
//	FAnd/FOr/FImplies  L, R (formulas)
type FNode struct {
	Kind     FKind
	Op       CompareOp
	HasScope bool
	Ground   bool
	P, A, B  PrinID
	L, R     uint32 // FormulaID or TermID depending on Kind
	Name     string
	Args     []TermID
	f        Formula // canonical AST representative of the class
}

// TNode is the immutable DAG node of a term. S holds Str/Atom/Var text and
// Func names; I holds Int values; P the PrinTerm principal; Args list/func
// elements. Time terms are identified via the stored representative.
type TNode struct {
	Kind   TKind
	Ground bool
	I      int64
	P      PrinID
	S      string
	Args   []TermID
	t      Term
}

// PNode is the immutable DAG node of a principal.
type PNode struct {
	Kind   PKind
	Parent PrinID
	S      string // name, key, hash digest, or subprincipal tag
	p      Principal
}

// ---------------------------------------------------------- chunked store

// Node storage is append-only and chunked: a chunk is never reallocated, so
// readers resolve an ID with two loads and no lock. The chunk directory is
// copy-on-write; the published count only moves forward after the node's
// chunk slot is fully written.
const (
	consChunkBits = 10
	consChunkSize = 1 << consChunkBits
)

type consStore[T any] struct {
	dir atomic.Pointer[[]*[consChunkSize]T]
	n   atomic.Uint32
}

// get resolves a published id (1-based). Callers must pass ids obtained from
// this table; get panics on 0 or out-of-range ids like a slice would.
func (s *consStore[T]) get(id uint32) *T {
	i := id - 1
	dir := *s.dir.Load()
	return &dir[i>>consChunkBits][i&(consChunkSize-1)]
}

// append stores v and returns its id. Callers serialize appends externally
// (the cons table's insert lock).
func (s *consStore[T]) append(v T) uint32 {
	i := s.n.Load()
	dirp := s.dir.Load()
	var dir []*[consChunkSize]T
	if dirp != nil {
		dir = *dirp
	}
	if int(i>>consChunkBits) == len(dir) {
		grown := make([]*[consChunkSize]T, len(dir)+1)
		copy(grown, dir)
		grown[len(dir)] = new([consChunkSize]T)
		dir = grown
		s.dir.Store(&dir)
	}
	dir[i>>consChunkBits][i&(consChunkSize-1)] = v
	s.n.Store(i + 1) // publish after the slot is written
	return i + 1
}

// ------------------------------------------------------------- cons table

const consShards = 64

type consShard struct {
	mu sync.RWMutex
	m  map[uint64][]uint32
}

type consTable[T any] struct {
	shards [consShards]consShard
	store  consStore[T]
	insMu  sync.Mutex // serializes appends so ids are dense
	limit  atomic.Uint32
}

func (t *consTable[T]) init(limit uint32) { t.limit.Store(limit) }

// find returns the id of an existing node with hash h satisfying eq, or 0.
func (t *consTable[T]) find(h uint64, eq func(*T) bool) uint32 {
	sh := &t.shards[h&(consShards-1)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, id := range sh.m[h] {
		if eq(t.store.get(id)) {
			return id
		}
	}
	return 0
}

// cons interns a node: an existing equal node's id, or a fresh append.
// ok=false means the table is at its cap and the value was not stored.
func (t *consTable[T]) cons(h uint64, eq func(*T) bool, v T) (uint32, bool) {
	if id := t.find(h, eq); id != 0 {
		return id, true
	}
	t.insMu.Lock()
	defer t.insMu.Unlock()
	sh := &t.shards[h&(consShards-1)]
	// Re-check under the insert lock: a racing cons may have appended it.
	sh.mu.RLock()
	for _, id := range sh.m[h] {
		if eq(t.store.get(id)) {
			sh.mu.RUnlock()
			return id, true
		}
	}
	sh.mu.RUnlock()
	if t.store.n.Load() >= t.limit.Load() {
		return 0, false
	}
	id := t.store.append(v)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = map[uint64][]uint32{}
	}
	sh.m[h] = append(sh.m[h], id)
	sh.mu.Unlock()
	return id, true
}

func (t *consTable[T]) len() int { return int(t.store.n.Load()) }

// DefaultConsLimit bounds each node table (formulas, terms, principals).
const DefaultConsLimit = 1 << 20

var (
	fTab consTable[FNode]
	tTab consTable[TNode]
	pTab consTable[PNode]
)

func init() {
	fTab.init(DefaultConsLimit)
	tTab.init(DefaultConsLimit)
	pTab.init(DefaultConsLimit)
}

// SetConsLimit adjusts the per-kind node cap. Lowering it below the current
// population stops further growth but keeps existing handles valid. Intended
// for tests and capacity tuning at startup.
func SetConsLimit(n int) {
	if n < 0 {
		n = 0
	}
	fTab.limit.Store(uint32(n))
	tTab.limit.Store(uint32(n))
	pTab.limit.Store(uint32(n))
}

// ConsStats reports the live node counts (formulas, terms, principals).
func ConsStats() (formulas, terms, prins int) {
	return fTab.len(), tTab.len(), pTab.len()
}

// ------------------------------------------------------------ node hashing

// Node hashes mix the kind tag with child ids and leaf data. Children are
// identified by id, so equal subtrees hash equal by induction and candidate
// verification never walks an AST.
func consHash(kind uint8, parts ...uint64) uint64 {
	h := fnvOffset.byte(kind)
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			h = h.byte(byte(p >> (8 * i)))
		}
	}
	return uint64(h)
}

func consHashStr(h uint64, s string) uint64 {
	return uint64(fnv64(h).str(s).byte(0))
}

// -------------------------------------------------------------- principals

// IDOfPrin interns p, returning its stable handle. ok=false only at the cap.
func IDOfPrin(p Principal) (PrinID, bool) {
	switch v := p.(type) {
	case Name:
		return consPrinLeaf(PName, string(v), p)
	case Key:
		return consPrinLeaf(PKey, string(v), p)
	case HashPrin:
		return consPrinLeaf(PHash, string(v), p)
	case varPrin:
		return consPrinLeaf(PVar, string(v), p)
	case Sub:
		parent, ok := IDOfPrin(v.Parent)
		if !ok {
			return 0, false
		}
		h := consHashStr(consHash(uint8(PSub)|0x80, uint64(parent)), v.Tag)
		id, ok := pTab.cons(h, func(n *PNode) bool {
			return n.Kind == PSub && n.Parent == parent && n.S == v.Tag
		}, PNode{Kind: PSub, Parent: parent, S: v.Tag, p: p})
		return PrinID(id), ok
	}
	return 0, false
}

func consPrinLeaf(kind PKind, s string, p Principal) (PrinID, bool) {
	h := consHashStr(consHash(uint8(kind)|0x80), s)
	id, ok := pTab.cons(h, func(n *PNode) bool {
		return n.Kind == kind && n.S == s
	}, PNode{Kind: kind, S: s, p: p})
	return PrinID(id), ok
}

// PrinOfID returns the canonical principal of a handle.
func PrinOfID(id PrinID) Principal { return pTab.store.get(uint32(id)).p }

// PrinNode returns the immutable node for destructuring.
func PrinNode(id PrinID) *PNode { return pTab.store.get(uint32(id)) }

// IsAncestorID reports whether a is an ancestor (proper or improper) of b in
// the subprincipal hierarchy, walking the DAG without allocating.
func IsAncestorID(a, b PrinID) bool {
	for {
		if a == b {
			return true
		}
		n := PrinNode(b)
		if n.Kind != PSub {
			return false
		}
		b = n.Parent
	}
}

// ------------------------------------------------------------------- terms

// IDOfTerm interns t, returning its stable handle. ok=false only at the cap.
func IDOfTerm(t Term) (TermID, bool) {
	switch v := t.(type) {
	case Str:
		return consTermLeaf(TStr, string(v), 0, t, true)
	case Atom:
		return consTermLeaf(TAtom, string(v), 0, t, true)
	case Var:
		return consTermLeaf(TVar, string(v), 0, t, false)
	case Int:
		h := consHash(uint8(TInt)|0x40, uint64(v))
		id, ok := tTab.cons(h, func(n *TNode) bool {
			return n.Kind == TInt && n.I == int64(v)
		}, TNode{Kind: TInt, I: int64(v), Ground: true, t: t})
		return TermID(id), ok
	case Time:
		// Hash by instant; verify with time.Equal via the representative, so
		// zone-differing but instant-equal Times share a node.
		h := consHash(uint8(TTime)|0x40, uint64(v.T.UnixNano()))
		id, ok := tTab.cons(h, func(n *TNode) bool {
			if n.Kind != TTime {
				return false
			}
			return n.t.(Time).T.Equal(v.T)
		}, TNode{Kind: TTime, I: v.T.UnixNano(), Ground: true, t: t})
		return TermID(id), ok
	case PrinTerm:
		p, ok := IDOfPrin(v.P)
		if !ok {
			return 0, false
		}
		h := consHash(uint8(TPrin)|0x40, uint64(p))
		id, ok := tTab.cons(h, func(n *TNode) bool {
			return n.Kind == TPrin && n.P == p
		}, TNode{Kind: TPrin, P: p, Ground: groundPrinID(p), t: t})
		return TermID(id), ok
	case TermList:
		return consTermArgs(TList, "", v, t)
	case Func:
		return consTermArgs(TFunc, v.Name, v.Args, t)
	}
	return 0, false
}

func consTermLeaf(kind TKind, s string, i int64, t Term, ground bool) (TermID, bool) {
	h := consHashStr(consHash(uint8(kind)|0x40, uint64(i)), s)
	id, ok := tTab.cons(h, func(n *TNode) bool {
		return n.Kind == kind && n.S == s && n.I == i
	}, TNode{Kind: kind, S: s, I: i, Ground: ground, t: t})
	return TermID(id), ok
}

func consTermArgs(kind TKind, name string, args []Term, t Term) (TermID, bool) {
	ids := make([]TermID, len(args))
	ground := true
	for i, a := range args {
		id, ok := IDOfTerm(a)
		if !ok {
			return 0, false
		}
		ids[i] = id
		ground = ground && TermNode(id).Ground
	}
	h := consHash(uint8(kind) | 0x40)
	for _, id := range ids {
		h = consHash(uint8(kind)|0x40, h, uint64(id))
	}
	h = consHashStr(h, name)
	id, ok := tTab.cons(h, func(n *TNode) bool {
		return n.Kind == kind && n.S == name && termIDsEqual(n.Args, ids)
	}, TNode{Kind: kind, S: name, Args: ids, Ground: ground, t: t})
	return TermID(id), ok
}

func termIDsEqual(a, b []TermID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TermOfID returns the canonical term of a handle.
func TermOfID(id TermID) Term { return tTab.store.get(uint32(id)).t }

// TermNode returns the immutable node for destructuring.
func TermNode(id TermID) *TNode { return tTab.store.get(uint32(id)) }

func groundPrinID(id PrinID) bool {
	for {
		n := PrinNode(id)
		switch n.Kind {
		case PVar:
			return false
		case PSub:
			id = n.Parent
		default:
			return true
		}
	}
}

// ---------------------------------------------------------------- formulas

// IDOf interns formula f into the hash-cons DAG, returning its stable
// handle: IDOf(a) == IDOf(b) exactly when a.Equal(b). ok=false only when the
// table is at its cap; callers then fall back to structural equality.
func IDOf(f Formula) (FormulaID, bool) {
	switch v := f.(type) {
	case TrueF:
		return consF(consHash(uint8(FTrue)), func(n *FNode) bool { return n.Kind == FTrue },
			FNode{Kind: FTrue, Ground: true, f: f})
	case FalseF:
		return consF(consHash(uint8(FFalse)), func(n *FNode) bool { return n.Kind == FFalse },
			FNode{Kind: FFalse, Ground: true, f: f})
	case Pred:
		ids := make([]TermID, len(v.Args))
		ground := true
		for i, a := range v.Args {
			id, ok := IDOfTerm(a)
			if !ok {
				return 0, false
			}
			ids[i] = id
			ground = ground && TermNode(id).Ground
		}
		h := consHash(uint8(FPred))
		for _, id := range ids {
			h = consHash(uint8(FPred), h, uint64(id))
		}
		h = consHashStr(h, v.Name)
		return consF(h, func(n *FNode) bool {
			return n.Kind == FPred && n.Name == v.Name && termIDsEqual(n.Args, ids)
		}, FNode{Kind: FPred, Name: v.Name, Args: ids, Ground: ground, f: f})
	case Says:
		p, ok := IDOfPrin(v.P)
		if !ok {
			return 0, false
		}
		body, ok := IDOf(v.F)
		if !ok {
			return 0, false
		}
		return ConsSays(p, body)
	case SpeaksFor:
		a, ok := IDOfPrin(v.A)
		if !ok {
			return 0, false
		}
		b, ok := IDOfPrin(v.B)
		if !ok {
			return 0, false
		}
		scope, hasScope := "", false
		if v.On != nil {
			scope, hasScope = v.On.Pred, true
		}
		return ConsSpeaksFor(a, b, scope, hasScope)
	case Compare:
		l, ok := IDOfTerm(v.L)
		if !ok {
			return 0, false
		}
		r, ok := IDOfTerm(v.R)
		if !ok {
			return 0, false
		}
		h := consHash(uint8(FCompare), uint64(v.Op), uint64(l), uint64(r))
		return consF(h, func(n *FNode) bool {
			return n.Kind == FCompare && n.Op == v.Op && n.L == uint32(l) && n.R == uint32(r)
		}, FNode{Kind: FCompare, Op: v.Op, L: uint32(l), R: uint32(r),
			Ground: TermNode(l).Ground && TermNode(r).Ground, f: f})
	case Not:
		inner, ok := IDOf(v.F)
		if !ok {
			return 0, false
		}
		return ConsNot(inner)
	case And:
		return consBinary(FAnd, v.L, v.R)
	case Or:
		return consBinary(FOr, v.L, v.R)
	case Implies:
		return consBinary(FImplies, v.L, v.R)
	}
	return 0, false
}

func consF(h uint64, eq func(*FNode) bool, v FNode) (FormulaID, bool) {
	id, ok := fTab.cons(h, eq, v)
	return FormulaID(id), ok
}

func consBinary(kind FKind, lf, rf Formula) (FormulaID, bool) {
	l, ok := IDOf(lf)
	if !ok {
		return 0, false
	}
	r, ok := IDOf(rf)
	if !ok {
		return 0, false
	}
	return consBinaryID(kind, l, r)
}

func consBinaryID(kind FKind, l, r FormulaID) (FormulaID, bool) {
	h := consHash(uint8(kind), uint64(l), uint64(r))
	var build func() Formula
	switch kind {
	case FAnd:
		build = func() Formula { return And{L: FormulaOfID(l), R: FormulaOfID(r)} }
	case FOr:
		build = func() Formula { return Or{L: FormulaOfID(l), R: FormulaOfID(r)} }
	default:
		build = func() Formula { return Implies{L: FormulaOfID(l), R: FormulaOfID(r)} }
	}
	if id := fTab.find(h, func(n *FNode) bool {
		return n.Kind == kind && n.L == uint32(l) && n.R == uint32(r)
	}); id != 0 {
		return FormulaID(id), true
	}
	return consF(h, func(n *FNode) bool {
		return n.Kind == kind && n.L == uint32(l) && n.R == uint32(r)
	}, FNode{Kind: kind, L: uint32(l), R: uint32(r),
		Ground: FormulaNode(l).Ground && FormulaNode(r).Ground, f: build()})
}

// ConsSays interns "P says F" from already-consed children in O(1).
func ConsSays(p PrinID, body FormulaID) (FormulaID, bool) {
	h := consHash(uint8(FSays), uint64(p), uint64(body))
	if id := fTab.find(h, func(n *FNode) bool {
		return n.Kind == FSays && n.P == p && n.L == uint32(body)
	}); id != 0 {
		return FormulaID(id), true
	}
	return consF(h, func(n *FNode) bool {
		return n.Kind == FSays && n.P == p && n.L == uint32(body)
	}, FNode{Kind: FSays, P: p, L: uint32(body),
		Ground: groundPrinID(p) && FormulaNode(body).Ground,
		f:      Says{P: PrinOfID(p), F: FormulaOfID(body)}})
}

// ConsSpeaksFor interns "A speaksfor B [on scope]" from consed children.
func ConsSpeaksFor(a, b PrinID, scope string, hasScope bool) (FormulaID, bool) {
	tag := uint64(0)
	if hasScope {
		tag = 1
	}
	h := consHashStr(consHash(uint8(FSpeaksFor), uint64(a), uint64(b), tag), scope)
	eq := func(n *FNode) bool {
		return n.Kind == FSpeaksFor && n.A == a && n.B == b &&
			n.HasScope == hasScope && n.Name == scope
	}
	if id := fTab.find(h, eq); id != 0 {
		return FormulaID(id), true
	}
	var on *Pattern
	if hasScope {
		on = &Pattern{Pred: scope}
	}
	return consF(h, eq, FNode{Kind: FSpeaksFor, A: a, B: b, Name: scope, HasScope: hasScope,
		Ground: groundPrinID(a) && groundPrinID(b),
		f:      SpeaksFor{A: PrinOfID(a), B: PrinOfID(b), On: on}})
}

// ConsNot interns "not F" from a consed child.
func ConsNot(inner FormulaID) (FormulaID, bool) {
	h := consHash(uint8(FNot), uint64(inner))
	eq := func(n *FNode) bool { return n.Kind == FNot && n.L == uint32(inner) }
	if id := fTab.find(h, eq); id != 0 {
		return FormulaID(id), true
	}
	return consF(h, eq, FNode{Kind: FNot, L: uint32(inner),
		Ground: FormulaNode(inner).Ground, f: Not{F: FormulaOfID(inner)}})
}

// ConsAnd interns a conjunction from consed children.
func ConsAnd(l, r FormulaID) (FormulaID, bool) { return consBinaryID(FAnd, l, r) }

// ConsOr interns a disjunction from consed children.
func ConsOr(l, r FormulaID) (FormulaID, bool) { return consBinaryID(FOr, l, r) }

// ConsImplies interns an implication from consed children.
func ConsImplies(l, r FormulaID) (FormulaID, bool) { return consBinaryID(FImplies, l, r) }

// consPredIDs interns name(args) from already-consed argument handles,
// building the representative AST only when the node is new. The wire
// decoder uses it so ingress never re-walks (or re-parses) predicate
// arguments it has already interned. The hash must match IDOf's FPred case
// exactly or the two paths would split equality classes.
func consPredIDs(name string, ids []TermID) (FormulaID, bool) {
	h := consHash(uint8(FPred))
	for _, id := range ids {
		h = consHash(uint8(FPred), h, uint64(id))
	}
	h = consHashStr(h, name)
	eq := func(n *FNode) bool {
		return n.Kind == FPred && n.Name == name && termIDsEqual(n.Args, ids)
	}
	if id := fTab.find(h, eq); id != 0 {
		return FormulaID(id), true
	}
	ground := true
	args := make([]Term, len(ids))
	for i, id := range ids {
		args[i] = TermOfID(id)
		ground = ground && TermNode(id).Ground
	}
	own := append([]TermID(nil), ids...)
	return consF(h, eq, FNode{Kind: FPred, Name: name, Args: own, Ground: ground,
		f: Pred{Name: name, Args: args}})
}

// consCompareIDs interns "l op r" from consed term handles.
func consCompareIDs(op CompareOp, l, r TermID) (FormulaID, bool) {
	h := consHash(uint8(FCompare), uint64(op), uint64(l), uint64(r))
	eq := func(n *FNode) bool {
		return n.Kind == FCompare && n.Op == op && n.L == uint32(l) && n.R == uint32(r)
	}
	if id := fTab.find(h, eq); id != 0 {
		return FormulaID(id), true
	}
	return consF(h, eq, FNode{Kind: FCompare, Op: op, L: uint32(l), R: uint32(r),
		Ground: TermNode(l).Ground && TermNode(r).Ground,
		f:      Compare{Op: op, L: TermOfID(l), R: TermOfID(r)}})
}

// consSubID interns parent.tag from a consed parent handle.
func consSubID(parent PrinID, tag string) (PrinID, bool) {
	h := consHashStr(consHash(uint8(PSub)|0x80, uint64(parent)), tag)
	id, ok := pTab.cons(h, func(n *PNode) bool {
		return n.Kind == PSub && n.Parent == parent && n.S == tag
	}, PNode{Kind: PSub, Parent: parent, S: tag,
		p: Sub{Parent: PrinOfID(parent), Tag: tag}})
	return PrinID(id), ok
}

// consPrinTermID interns a principal-in-term-position from its handle.
func consPrinTermID(p PrinID) (TermID, bool) {
	h := consHash(uint8(TPrin)|0x40, uint64(p))
	id, ok := tTab.cons(h, func(n *TNode) bool {
		return n.Kind == TPrin && n.P == p
	}, TNode{Kind: TPrin, P: p, Ground: groundPrinID(p), t: PrinTerm{P: PrinOfID(p)}})
	return TermID(id), ok
}

// consTermArgsIDs interns a list or function term from consed element
// handles; the hash must match consTermArgs exactly.
func consTermArgsIDs(kind TKind, name string, ids []TermID) (TermID, bool) {
	h := consHash(uint8(kind) | 0x40)
	for _, id := range ids {
		h = consHash(uint8(kind)|0x40, h, uint64(id))
	}
	h = consHashStr(h, name)
	eq := func(n *TNode) bool {
		return n.Kind == kind && n.S == name && termIDsEqual(n.Args, ids)
	}
	if id := tTab.find(h, eq); id != 0 {
		return TermID(id), true
	}
	ground := true
	elems := make([]Term, len(ids))
	for i, id := range ids {
		elems[i] = TermOfID(id)
		ground = ground && TermNode(id).Ground
	}
	var rep Term
	if kind == TList {
		rep = TermList(elems)
	} else {
		rep = Func{Name: name, Args: elems}
	}
	own := append([]TermID(nil), ids...)
	id, ok := tTab.cons(h, eq, TNode{Kind: kind, S: name, Args: own, Ground: ground, t: rep})
	return TermID(id), ok
}

// FormulaOfID returns the canonical formula of a handle.
func FormulaOfID(id FormulaID) Formula { return fTab.store.get(uint32(id)).f }

// FormulaNode returns the immutable node for destructuring. Callers must
// not mutate the node or its Args.
func FormulaNode(id FormulaID) *FNode { return fTab.store.get(uint32(id)) }

// GroundID reports the precomputed groundness bit of a formula handle.
func GroundID(id FormulaID) bool { return FormulaNode(id).Ground }

// PatternMatchesID is Pattern.Matches over the DAG: predicates with the
// pattern's name, comparisons whose left side is the atom of that name, and
// conjunctions of matches. It allocates nothing.
func PatternMatchesID(pred string, id FormulaID) bool {
	n := FormulaNode(id)
	switch n.Kind {
	case FPred:
		return n.Name == pred
	case FCompare:
		l := TermNode(TermID(n.L))
		return l.Kind == TAtom && l.S == pred
	case FAnd:
		return PatternMatchesID(pred, FormulaID(n.L)) && PatternMatchesID(pred, FormulaID(n.R))
	}
	return false
}

package nal

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse parses a NAL formula from its concrete syntax. The grammar, in
// decreasing binding strength:
//
//	atomic  : '(' formula ')' | 'true' | 'false'
//	        | principal 'says' unary
//	        | principal 'speaksfor' principal ('on' IDENT)?
//	        | IDENT '(' term, ... ')'         (predicate)
//	        | term CMP term                   (comparison)
//	        | IDENT                           (nullary predicate)
//	unary   : 'not' unary | atomic
//	conj    : unary ('and' unary)*
//	disj    : conj ('or' conj)*
//	formula : disj ('=>' formula)?
//
// Principals: IDENT('.'tag)* with the prefixes key: and hash: naming key and
// hash principals; ?X is a guard variable. Terms: "strings", integers,
// @2026-03-19 timestamps, [lists], atoms, principals, ?vars.
func Parse(src string) (Formula, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tkEOF {
		return nil, fmt.Errorf("nal: trailing input at %s", p.peek())
	}
	return f, nil
}

// MustParse is Parse that panics on error, for formula literals in tests and
// examples.
func MustParse(src string) Formula {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

// ParsePrincipal parses a principal expression such as NTP, key:ab12,
// kernel.process.23, or ?X.
func ParsePrincipal(src string) (Principal, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	pr, err := p.principal()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tkEOF {
		return nil, fmt.Errorf("nal: trailing input at %s", p.peek())
	}
	return pr, nil
}

// ParseTerm parses a single term.
func ParseTerm(src string) (Term, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	t, err := p.term()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tkEOF {
		return nil, fmt.Errorf("nal: trailing input at %s", p.peek())
	}
	return t, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("nal: expected %s, found %s", what, t)
	}
	return t, nil
}

// keyword checks whether the next token is the identifier kw and consumes it.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tkIdent && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) formula() (Formula, error) {
	l, err := p.disj()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tkArrow {
		p.next()
		r, err := p.formula()
		if err != nil {
			return nil, err
		}
		return Implies{L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) disj() (Formula, error) {
	l, err := p.conj()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		r, err := p.conj()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) conj() (Formula, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Formula, error) {
	if p.keyword("not") {
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not{F: f}, nil
	}
	return p.atomic()
}

func (p *parser) atomic() (Formula, error) {
	t := p.peek()
	switch t.kind {
	case tkLParen:
		p.next()
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkRParen, "')'"); err != nil {
			return nil, err
		}
		return f, nil
	case tkString, tkInt, tkTime, tkLBrack:
		// A pure term must begin a comparison.
		l, err := p.term()
		if err != nil {
			return nil, err
		}
		return p.comparison(l)
	case tkIdent:
		if t.text == "false" {
			p.next()
			return FalseF{}, nil
		}
		if t.text == "true" {
			p.next()
			return TrueF{}, nil
		}
		return p.principalLed()
	case tkVar:
		return p.principalLed()
	}
	return nil, fmt.Errorf("nal: expected formula, found %s", t)
}

// principalLed parses an atomic formula that begins with an identifier or a
// variable: a says/speaksfor form, a predicate application, a comparison, or
// a bare nullary predicate.
func (p *parser) principalLed() (Formula, error) {
	start := p.pos
	pr, err := p.principal()
	if err != nil {
		return nil, err
	}
	switch {
	case p.keyword("says"):
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Says{P: pr, F: f}, nil
	case p.keyword("speaksfor"):
		b, err := p.principal()
		if err != nil {
			return nil, err
		}
		sf := SpeaksFor{A: pr, B: b}
		if p.keyword("on") {
			id, err := p.expect(tkIdent, "pattern name after 'on'")
			if err != nil {
				return nil, err
			}
			sf.On = &Pattern{Pred: id.text}
		}
		return sf, nil
	case p.peek().kind == tkLParen:
		// Predicate application: the head must be a simple name.
		name, ok := pr.(Name)
		if !ok {
			return nil, fmt.Errorf("nal: predicate name must be simple, found %s", pr)
		}
		p.next() // consume '('
		var args []Term
		if p.peek().kind != tkRParen {
			for {
				a, err := p.term()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.peek().kind == tkComma {
					p.next()
					continue
				}
				break
			}
		}
		if _, err := p.expect(tkRParen, "')'"); err != nil {
			return nil, err
		}
		if p.peek().kind == tkOp {
			// quota(alice) <= 80: the application is a function term in a
			// comparison, not a predicate.
			return p.comparison(Func{Name: string(name), Args: args})
		}
		return Pred{Name: string(name), Args: args}, nil
	case p.peek().kind == tkOp:
		return p.comparison(prinToTerm(pr))
	default:
		// Reparse as a bare nullary predicate if the principal is simple.
		if name, ok := pr.(Name); ok {
			return Pred{Name: string(name)}, nil
		}
		p.pos = start
		return nil, fmt.Errorf("nal: dangling principal %s (expected says/speaksfor)", pr)
	}
}

func (p *parser) comparison(l Term) (Formula, error) {
	op, err := p.expect(tkOp, "comparison operator")
	if err != nil {
		return nil, err
	}
	var cop CompareOp
	switch op.text {
	case "<":
		cop = OpLT
	case "<=":
		cop = OpLE
	case "=":
		cop = OpEQ
	case "!=":
		cop = OpNE
	case ">=":
		cop = OpGE
	case ">":
		cop = OpGT
	default:
		return nil, fmt.Errorf("nal: unknown operator %q", op.text)
	}
	r, err := p.term()
	if err != nil {
		return nil, err
	}
	return Compare{Op: cop, L: l, R: r}, nil
}

// reserved words may not be used as principal or predicate names.
var reserved = map[string]bool{
	"says": true, "speaksfor": true, "on": true,
	"and": true, "or": true, "not": true, "true": true, "false": true,
}

func (p *parser) principal() (Principal, error) {
	t := p.next()
	var base Principal
	switch t.kind {
	case tkVar:
		base = varPrin(t.text)
	case tkIdent:
		if reserved[t.text] {
			return nil, fmt.Errorf("nal: reserved word %q in principal position", t.text)
		}
		switch {
		case strings.HasPrefix(t.text, "key:"):
			base = Key(t.text[len("key:"):])
		case strings.HasPrefix(t.text, "hash:"):
			base = HashPrin(t.text[len("hash:"):])
		default:
			base = Name(t.text)
		}
	default:
		return nil, fmt.Errorf("nal: expected principal, found %s", t)
	}
	for p.peek().kind == tkDot {
		p.next()
		tag := p.next()
		if tag.kind != tkIdent && tag.kind != tkInt {
			return nil, fmt.Errorf("nal: expected subprincipal tag, found %s", tag)
		}
		base = Sub{Parent: base, Tag: tag.text}
	}
	return base, nil
}

func (p *parser) term() (Term, error) {
	t := p.peek()
	switch t.kind {
	case tkString:
		p.next()
		return Str(t.text), nil
	case tkInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("nal: bad integer %q: %v", t.text, err)
		}
		return Int(n), nil
	case tkTime:
		p.next()
		return parseTimeTerm(t.text)
	case tkLBrack:
		p.next()
		var list TermList
		if p.peek().kind != tkRBrack {
			for {
				e, err := p.term()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if p.peek().kind == tkComma {
					p.next()
					continue
				}
				break
			}
		}
		if _, err := p.expect(tkRBrack, "']'"); err != nil {
			return nil, err
		}
		return list, nil
	case tkIdent, tkVar:
		pr, err := p.principal()
		if err != nil {
			return nil, err
		}
		if name, ok := pr.(Name); ok && p.peek().kind == tkLParen {
			p.next()
			var args []Term
			if p.peek().kind != tkRParen {
				for {
					a, err := p.term()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().kind == tkComma {
						p.next()
						continue
					}
					break
				}
			}
			if _, err := p.expect(tkRParen, "')'"); err != nil {
				return nil, err
			}
			return Func{Name: string(name), Args: args}, nil
		}
		return prinToTerm(pr), nil
	}
	return nil, fmt.Errorf("nal: expected term, found %s", t)
}

// prinToTerm converts a parsed principal into term position: simple names
// become atoms, variables stay variables, everything else is wrapped.
func prinToTerm(p Principal) Term {
	switch v := p.(type) {
	case Name:
		return Atom(v)
	case varPrin:
		return Var(v)
	}
	return PrinTerm{P: p}
}

func parseTimeTerm(text string) (Term, error) {
	for _, layout := range []string{"2006-01-02", time.RFC3339} {
		if ts, err := time.Parse(layout, text); err == nil {
			return Time{T: ts}, nil
		}
	}
	return nil, fmt.Errorf("nal: bad timestamp @%s (want YYYY-MM-DD or RFC 3339)", text)
}

package ipcgraph

import (
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
	"repro/internal/tpm"
)

func boot(t *testing.T) *kernel.Kernel {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// topology: player → decoder → display; fs isolated.
func setup(t *testing.T, k *kernel.Kernel) (player, decoder, display, fs *kernel.Session) {
	t.Helper()
	mk := func(name string) *kernel.Session {
		s, err := k.NewSession([]byte(name))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	player, decoder, display, fs = mk("player"), mk("decoder"), mk("display"), mk("fs")
	echo := func(kernel.Caller, *kernel.Msg) ([]byte, error) { return nil, nil }
	decoder.Listen(echo)
	display.Listen(echo)
	fs.Listen(echo)
	mustOpen(t, player, decoder)
	mustOpen(t, decoder, display)
	return
}

// mustOpen opens a channel from s to the peer's listening port.
func mustOpen(t *testing.T, s, peer *kernel.Session) kernel.Cap {
	t.Helper()
	id, err := peer.ListeningPort()
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestReachability(t *testing.T) {
	k := boot(t)
	player, decoder, display, fs := setup(t, k)
	a, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	if !a.HasPath(player.PID(), decoder.PID()) || !a.HasPath(player.PID(), display.PID()) {
		t.Error("player should transitively reach decoder and display")
	}
	if a.HasPath(player.PID(), fs.PID()) {
		t.Error("player must not reach fs")
	}
	if a.HasPath(display.PID(), player.PID()) {
		t.Error("edges are directed")
	}
	if !a.HasPath(player.PID(), player.PID()) {
		t.Error("self path trivially holds")
	}
	if !strings.Contains(a.Snapshot(), "->") {
		t.Error("snapshot empty")
	}
}

func TestCertifyNoPath(t *testing.T) {
	k := boot(t)
	player, decoder, _, fs := setup(t, k)
	a, _ := New(k)
	lbl, err := a.CertifyNoPath(player, fs)
	if err != nil {
		t.Fatal(err)
	}
	want := nal.Says{P: a.Prin(), F: nal.Not{F: nal.Pred{
		Name: "hasPath",
		Args: []nal.Term{nal.PrinTerm{P: player.Prin()}, nal.PrinTerm{P: fs.Prin()}},
	}}}
	if !lbl.Formula.Equal(nal.Formula(want)) {
		t.Errorf("label = %q", lbl.Formula)
	}
	// A connected pair is refused.
	if _, err := a.CertifyNoPath(player, decoder); err == nil {
		t.Error("connected pair must not be certified")
	}
}

func TestMoviePlayerProofShape(t *testing.T) {
	// The §4 movie-player flow: the content owner's goal is discharged by
	// the analyzer's ¬hasPath labels, attributed to the abstract
	// IPCAnalyzer via the kernel binding — no binary hash disclosed.
	k := boot(t)
	player, _, _, fs := setup(t, k)
	a, _ := New(k)
	noFS, err := a.CertifyNoPath(player, fs)
	if err != nil {
		t.Fatal(err)
	}
	creds := []nal.Formula{a.BindingLabel(), noFS.Formula}
	goal := nal.Says{P: nal.Name("IPCAnalyzer"), F: nal.Not{F: nal.Pred{
		Name: "hasPath",
		Args: []nal.Term{nal.PrinTerm{P: player.Prin()}, nal.PrinTerm{P: fs.Prin()}},
	}}}
	d := &proof.Deriver{Creds: creds, TrustRoots: []nal.Principal{k.Prin}}
	pf, err := d.Derive(goal)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if _, err := proof.Check(pf, goal, &proof.Env{
		Credentials: creds,
		TrustRoots:  []nal.Principal{k.Prin},
	}); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestChannelEnforcement(t *testing.T) {
	k := boot(t)
	player, _, _, fs := setup(t, k)
	// Enforced: the analyzer's ¬hasPath claim is backed by the kernel — a
	// session with no channel handle cannot even address the port.
	k.EnforceChannels(true)
	fsCap := mustOpen(t, player, fs)
	if _, err := player.Call(fsCap, &kernel.Msg{Op: "x", Obj: "y"}); err != nil {
		t.Errorf("opened channel call: %v", err)
	}
	// Closing the last handle revokes the channel capability; the stale
	// handle fails with EBADF before the capability check even runs.
	if err := player.Close(fsCap); err != nil {
		t.Fatal(err)
	}
	if _, err := player.Call(fsCap, &kernel.Msg{Op: "x", Obj: "y"}); kernel.ErrnoOf(err) != kernel.EBADF {
		t.Errorf("closed handle: want EBADF, got %v", err)
	}
	if a, _ := New(k); a.HasPath(player.PID(), fs.PID()) {
		t.Error("closed channel must leave the connectivity graph")
	}
}

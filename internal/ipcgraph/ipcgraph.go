// Package ipcgraph implements the general-purpose IPC connectivity analyzer
// of §2.2 and the movie-player application: a labeling function that
// enumerates the transitive IPC connection graph through the kernel's
// channel table and issues ¬hasPath labels. Since Nexus disk and network
// drivers live in user space and are reachable only via IPC, a process with
// no transitive path to them demonstrably has no channel for leaking data —
// an analytic basis for trust that does not divulge the program's hash.
package ipcgraph

import (
	"fmt"
	"sort"

	"repro/internal/kernel"
	"repro/internal/nal"
)

// Analyzer is the analysis process.
type Analyzer struct {
	k    *kernel.Kernel
	sess *kernel.Session
}

// New launches the analyzer as a session on the kernel.
func New(k *kernel.Kernel) (*Analyzer, error) {
	s, err := k.NewSession([]byte("ipc-connectivity-analyzer"))
	if err != nil {
		return nil, err
	}
	return &Analyzer{k: k, sess: s}, nil
}

// Prin returns the analyzer's principal (IPCAnalyzer in the paper's
// examples, bound to a concrete process by a kernel speaksfor label).
func (a *Analyzer) Prin() nal.Principal { return a.sess.Prin() }

// Session returns the analyzer's ABI session.
func (a *Analyzer) Session() *kernel.Session { return a.sess }

// Reachable computes the set of PIDs transitively reachable from pid over
// held IPC channels.
func (a *Analyzer) Reachable(pid int) map[int]bool {
	graph := a.k.Channels()
	seen := map[int]bool{}
	stack := []int{pid}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range graph[cur] {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return seen
}

// HasPath reports whether src can transitively reach dst via IPC.
func (a *Analyzer) HasPath(src, dst int) bool {
	if src == dst {
		return true
	}
	return a.Reachable(src)[dst]
}

// CertifyNoPath analyzes the current channel table and, if src has no
// transitive path to dst, deposits the label
// "analyzer says not hasPath(src, dst)" in the analyzer's labelstore for
// transfer to the subject. It fails when a path exists. The snapshot it
// analyzes is coherent: Kernel.Channels linearizes against teardown.
func (a *Analyzer) CertifyNoPath(src, dst *kernel.Session) (*kernel.Label, error) {
	if a.HasPath(src.PID(), dst.PID()) {
		return nil, fmt.Errorf("ipcgraph: %s has a path to %s", src.Prin(), dst.Prin())
	}
	stmt := nal.Not{F: nal.Pred{
		Name: "hasPath",
		Args: []nal.Term{nal.PrinTerm{P: src.Prin()}, nal.PrinTerm{P: dst.Prin()}},
	}}
	return a.sess.SayFormula(stmt)
}

// BindingLabel returns the kernel's statement that this process implements
// the IPCAnalyzer role: "kernel says proc speaksfor IPCAnalyzer". Verifiers
// that trust the kernel accept the analyzer's findings under the abstract
// name.
func (a *Analyzer) BindingLabel() nal.Formula {
	return nal.Says{P: a.k.Prin, F: nal.SpeaksFor{A: a.sess.Prin(), B: nal.Name("IPCAnalyzer")}}
}

// Snapshot renders the current connectivity graph for debugging and
// introspection publication.
func (a *Analyzer) Snapshot() string {
	graph := a.k.Channels()
	pids := make([]int, 0, len(graph))
	for pid := range graph {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	out := ""
	for _, pid := range pids {
		peers := append([]int(nil), graph[pid]...)
		sort.Ints(peers)
		out += fmt.Sprintf("%d -> %v\n", pid, peers)
	}
	return out
}

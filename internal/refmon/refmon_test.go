package refmon

import (
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/tpm"
)

func boot(t *testing.T) *kernel.Kernel {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestPolicyEvaluation(t *testing.T) {
	p := &Policy{
		Ops:     map[string]bool{"send": true, "recv": true},
		Objects: map[string]bool{"nic:1": true},
	}
	ok := func(op, obj string) bool {
		return p.Allows(&kernel.Msg{Op: op, Obj: obj}, nil)
	}
	if !ok("send", "nic:1") || !ok("recv", "nic:1") {
		t.Error("allowed ops blocked")
	}
	if ok("dma-setup", "nic:1") || ok("send", "nic:2") {
		t.Error("disallowed call permitted")
	}
	// Payload predicate.
	p.ForbidPayload = func(wire []byte) bool { return len(wire) > 4 }
	if p.Allows(&kernel.Msg{Op: "send", Obj: "nic:1"}, []byte("toolong")) {
		t.Error("forbidden payload permitted")
	}
}

func TestMonitorCachingBehaviour(t *testing.T) {
	p := &Policy{Ops: map[string]bool{"send": true}}
	m := NewMonitor(p, false)
	msg := &kernel.Msg{Op: "send", Obj: "x"}
	for i := 0; i < 5; i++ {
		if m.OnCall(kernel.Caller{}, msg, nil) != kernel.VerdictAllow {
			t.Fatal("allowed call blocked")
		}
	}
	hits, misses, _ := m.Stats()
	if misses != 1 || hits != 4 {
		t.Errorf("stats hits=%d misses=%d", hits, misses)
	}
	// Negative decisions cache too.
	bad := &kernel.Msg{Op: "evil", Obj: "x"}
	for i := 0; i < 3; i++ {
		if m.OnCall(kernel.Caller{}, bad, nil) != kernel.VerdictBlock {
			t.Fatal("blocked call allowed")
		}
	}
	_, _, blocked := m.Stats()
	if blocked != 1 {
		t.Errorf("blocked count = %d (negative caching)", blocked)
	}
	// Disabling the cache forces full evaluation.
	m.SetCaching(false)
	m.OnCall(kernel.Caller{}, msg, nil)
	m.OnCall(kernel.Caller{}, msg, nil)
	_, misses2, _ := m.Stats()
	if misses2 < 3 {
		t.Errorf("uncached misses = %d", misses2)
	}
}

func TestUserLevelMonitorDecodesWire(t *testing.T) {
	p := &Policy{Ops: map[string]bool{"send": true}}
	m := NewMonitor(p, true)
	m.SetCaching(false)
	// A user-level monitor must decode the wire copy; garbage wire blocks.
	if m.OnCall(kernel.Caller{}, &kernel.Msg{Op: "send", Obj: "x"}, []byte{1, 2}) != kernel.VerdictBlock {
		t.Error("undecodable wire should block")
	}
}

func TestRelinquishMonitor(t *testing.T) {
	k := boot(t)
	srv, _ := k.NewSession([]byte("webserver"))
	cli, _ := k.NewSession([]byte("cli"))
	srvCap, _ := srv.Listen(func(kernel.Caller, *kernel.Msg) ([]byte, error) { return nil, nil })
	portID, _ := srv.PortOf(srvCap)
	cliCap, err := cli.Open(portID)
	if err != nil {
		t.Fatal(err)
	}
	r := &Relinquish{Allowed: map[string]bool{"ipc": true}}
	mon, _ := k.NewSession([]byte("mon"))
	if _, err := mon.Interpose(portID, r); err != nil {
		t.Fatal(err)
	}
	// During initialization anything goes.
	if _, err := cli.Call(cliCap, &kernel.Msg{Op: "open", Obj: "f"}); err != nil {
		t.Fatalf("pre-seal: %v", err)
	}
	r.Seal()
	if _, err := cli.Call(cliCap, &kernel.Msg{Op: "open", Obj: "f"}); !errors.Is(err, kernel.ErrDenied) {
		t.Errorf("post-seal: want ErrDenied, got %v", err)
	}
	if ern := kernel.ErrnoOf(func() error { _, err := cli.Call(cliCap, &kernel.Msg{Op: "open", Obj: "f"}); return err }()); ern != kernel.EACCES {
		t.Errorf("post-seal errno = %v, want EACCES", ern)
	}
	if _, err := cli.Call(cliCap, &kernel.Msg{Op: "ipc", Obj: "f"}); err != nil {
		t.Errorf("allowed op post-seal: %v", err)
	}
}

func TestDDRMLabelShape(t *testing.T) {
	monitor := nal.MustPrincipal("kernel.ipd.9")
	driver := nal.MustPrincipal("kernel.ipd.3")
	l := DDRMLabel(monitor, driver)
	want := nal.MustParse("kernel.ipd.9 says confined(kernel.ipd.3)")
	if !l.Equal(want) {
		t.Errorf("label = %q", l)
	}
}

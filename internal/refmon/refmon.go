// Package refmon implements reference monitors for the Nexus: the device
// driver reference monitor (DDRM) of §4.1/[56] that constrains user-level
// drivers to a safety policy, the syscall-relinquishing monitor used by the
// Fauxbook web server, and a generic cached policy monitor whose hit/miss
// behaviour produces the kref/uref curves of Figure 7.
package refmon

import (
	"sync"

	"repro/internal/kernel"
	"repro/internal/nal"
)

// Policy is a DDRM safety policy: an allow-list of operations and,
// optionally, of peer objects. Everything not allowed is blocked.
type Policy struct {
	// Ops are the permitted operation names (e.g. send, recv, dma-setup).
	Ops map[string]bool
	// Objects, when non-nil, restricts the objects the monitored process
	// may name (e.g. only the IPC channel to the web server).
	Objects map[string]bool
	// ForbidPayload, when non-nil, rejects messages whose marshaled form
	// fails the predicate — used to deny DMA into non-granted pages.
	ForbidPayload func(wire []byte) bool
}

// Allows evaluates the policy against a message. This is the full
// (uncached) policy evaluation: op lookup, object lookup, and payload scan.
func (p *Policy) Allows(m *kernel.Msg, wire []byte) bool {
	if !p.Ops[m.Op] {
		return false
	}
	if p.Objects != nil && !p.Objects[m.Obj] {
		return false
	}
	if p.ForbidPayload != nil && p.ForbidPayload(wire) {
		return false
	}
	return true
}

// Monitor is a caching reference monitor implementing kernel.Interposer.
// UserLevel simulates a user-space monitor: each decision pays an extra
// marshal/unmarshal crossing, the ~77% worst case of §5.3.
type Monitor struct {
	Policy    *Policy
	UserLevel bool

	mu      sync.Mutex
	caching bool
	cache   map[string]bool

	hits, misses, blocked uint64
}

// NewMonitor creates a monitor over a policy. Caching starts enabled.
func NewMonitor(p *Policy, userLevel bool) *Monitor {
	return &Monitor{Policy: p, UserLevel: userLevel, caching: true, cache: map[string]bool{}}
}

// SetCaching toggles the decision cache (Figure 7 min vs max).
func (m *Monitor) SetCaching(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.caching = on
	if !on {
		m.cache = map[string]bool{}
	}
}

// Stats reports cache hits, misses, and blocked calls.
func (m *Monitor) Stats() (hits, misses, blocked uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses, m.blocked
}

// OnCall implements kernel.Interposer.
func (m *Monitor) OnCall(from kernel.Caller, msg *kernel.Msg, wire []byte) kernel.Verdict {
	key := msg.Op + "\x00" + msg.Obj
	m.mu.Lock()
	if m.caching {
		if allow, ok := m.cache[key]; ok {
			m.hits++
			m.mu.Unlock()
			if !allow {
				return kernel.VerdictBlock
			}
			return kernel.VerdictAllow
		}
	}
	m.misses++
	m.mu.Unlock()

	if m.UserLevel {
		// A user-level monitor receives a copy of the call across a second
		// protection boundary: model the marshal + copy + unmarshal cost.
		cp := make([]byte, len(wire))
		copy(cp, wire)
		if _, err := kernel.DecodeWire(cp); err != nil {
			return kernel.VerdictBlock
		}
	}
	allow := m.Policy.Allows(msg, wire)
	m.mu.Lock()
	if m.caching {
		m.cache[key] = allow
	}
	if !allow {
		m.blocked++
	}
	m.mu.Unlock()
	if !allow {
		return kernel.VerdictBlock
	}
	return kernel.VerdictAllow
}

// OnReturn implements kernel.Interposer; DDRM policies do not rewrite
// responses.
func (m *Monitor) OnReturn(from kernel.Caller, msg *kernel.Msg, out []byte) []byte {
	return out
}

// DDRMLabel is the synthetic-basis label the monitor supports: the monitor
// process states that the monitored driver is confined to the policy.
// "monitor says confined(driver)".
func DDRMLabel(monitor, driver nal.Principal) nal.Formula {
	return nal.Says{P: monitor, F: nal.Pred{
		Name: "confined",
		Args: []nal.Term{nal.PrinTerm{P: driver}},
	}}
}

// Relinquish is a monitor enforcing the web server pattern of §4.1: after
// initialization the process gives up all operations outside the allowed
// set, proving it cannot open new channels of communication.
type Relinquish struct {
	Allowed map[string]bool

	mu     sync.Mutex
	sealed bool
}

// Seal ends the initialization phase; from now on only Allowed ops pass.
func (r *Relinquish) Seal() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sealed = true
}

// OnCall implements kernel.Interposer.
func (r *Relinquish) OnCall(from kernel.Caller, m *kernel.Msg, wire []byte) kernel.Verdict {
	r.mu.Lock()
	sealed := r.sealed
	r.mu.Unlock()
	if sealed && !r.Allowed[m.Op] {
		return kernel.VerdictBlock
	}
	return kernel.VerdictAllow
}

// OnReturn implements kernel.Interposer.
func (r *Relinquish) OnReturn(from kernel.Caller, m *kernel.Msg, out []byte) []byte {
	return out
}

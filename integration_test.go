package nexus

import (
	"errors"
	"testing"

	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
	"repro/internal/privacy"
)

// TestCrossMachineAttestation runs the full §2.4 externalization story:
// a process on machine A utters a label; the label travels to machine B as
// an X.509-style chain ("TPM says kernel says process says S"); B's
// verifier converts the chain into NAL labels, connects the key principals
// to abstract names it trusts, and discharges its goal with an explicit
// proof.
func TestCrossMachineAttestation(t *testing.T) {
	// Machine A: a measured Nexus whose process claims type safety.
	tpA, err := NewTPM(0)
	if err != nil {
		t.Fatal(err)
	}
	kA, err := Boot(tpA, NewDisk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	jvm, _ := kA.CreateProcess(0, []byte("jvm"))
	label, err := jvm.Labels.Say("isTypeSafe(hash:deadbeef)")
	if err != nil {
		t.Fatal(err)
	}
	ext, err := jvm.Labels.Externalize(label.Handle)
	if err != nil {
		t.Fatal(err)
	}

	// Machine B: the verifier knows A's platform EK (axiomatic trust in
	// the hardware) and names A's deployment "SiteA".
	chain, err := kernel.VerifyExternalLabels(ext, tpA.EKFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	// chain[0]: key:EK says key:NK speaksfor key:EK.nexus
	// chain[1]: key:NK says <kernel-prin>.ipd.N says isTypeSafe(...)
	ekPrin := nal.Key(tpA.EKFingerprint())

	// B's local policy: trust the platform to identify genuine Nexus
	// kernels, and name the measured Nexus "SiteA".
	siteBinding := nal.SpeaksFor{
		A: nal.SubOf(ekPrin, "nexus"),
		B: nal.Name("SiteA"),
	}
	creds := append(chain, siteBinding)

	// Goal: SiteA attributes the type-safety claim to one of its
	// processes. Note the statement stays nested — a process's utterance
	// never flows upward to its parent (deduction is local, §2.1); what
	// flows is the kernel's attribution of it, via the EK handoff and the
	// site binding.
	innerSays := chain[1].(nal.Says)
	procStmt := innerSays.F.(nal.Says) // kernelPrin.ipd.N says isTypeSafe
	goal := nal.Formula(nal.Says{P: nal.Name("SiteA"), F: procStmt})

	d := &proof.Deriver{
		Creds:      creds,
		TrustRoots: []nal.Principal{ekPrin},
		MaxDepth:   12,
	}
	pf, err := d.Derive(goal)
	if err != nil {
		t.Fatalf("Derive: %v\ncreds: %v", err, creds)
	}
	res, err := proof.Check(pf, goal, &proof.Env{
		Credentials: creds,
		TrustRoots:  []nal.Principal{ekPrin},
	})
	if err != nil {
		t.Fatalf("Check: %v\nproof:\n%s", err, pf)
	}
	if !res.Cacheable {
		t.Error("static attestation proof should be cacheable")
	}

	// A verifier trusting a different platform rejects the chain.
	tpEvil, _ := NewTPM(0)
	if _, err := kernel.VerifyExternalLabels(ext, tpEvil.EKFingerprint()); err == nil {
		t.Error("chain verified against wrong platform")
	}
}

// TestPrivacyPreservingAttestation combines the privacy authority with the
// proof layer: a verifier accepts a pseudonymous label as coming from some
// genuine Nexus without learning which platform.
func TestPrivacyPreservingAttestation(t *testing.T) {
	tp, _ := NewTPM(0)
	k, err := Boot(tp, NewDisk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := privacy.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	pa.AddPlatform(tp.EKFingerprint())
	pseud, err := pa.Enroll(k)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := pseud.SignLabel("player", "isolated(hash:ab)", 1)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := privacy.VerifyPseudonymousLabel(lc, pseud.Cert, pa.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}

	// Goal: GenuineNexus (via its pseudonym) attributes isolation to the
	// player.
	goal := nal.MustParse("GenuineNexus says player says isolated(hash:ab)")
	d := &proof.Deriver{
		Creds:      labels,
		TrustRoots: []nal.Principal{pa.Prin()},
		MaxDepth:   10,
	}
	pf, err := d.Derive(goal)
	if err != nil {
		t.Fatalf("Derive: %v\nlabels: %v", err, labels)
	}
	if _, err := proof.Check(pf, goal, &proof.Env{
		Credentials: labels,
		TrustRoots:  []nal.Principal{pa.Prin()},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRevocationViaAuthority exercises the §2.7 revocation idiom through
// the kernel: A says Valid(S) => S, with a revocation authority.
func TestRevocationViaAuthority(t *testing.T) {
	tp, _ := NewTPM(0)
	k, err := Boot(tp, NewDisk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	k.SetGuard(NewGuard(k))
	issuer, _ := k.CreateProcess(0, []byte("issuer"))
	revoker, _ := k.CreateProcess(0, []byte("revocation-service"))
	srv, _ := k.CreateProcess(0, []byte("srv"))
	cli, _ := k.CreateProcess(0, []byte("cli"))
	port, _ := k.CreatePort(srv, func(Caller, *Msg) ([]byte, error) { return nil, nil })

	// The issuer's revocable grant.
	grant, err := issuer.Labels.SayFormula(nal.MustParse("Valid(access) => access"))
	if err != nil {
		t.Fatal(err)
	}
	revoked := false
	auth, err := k.RegisterAuthority(revoker, func(f nal.Formula) bool {
		want := nal.Says{P: issuer.Prin, F: nal.MustParse("Valid(access)")}
		return !revoked && f.Equal(nal.Formula(want))
	})
	if err != nil {
		t.Fatal(err)
	}

	goal := nal.Says{P: issuer.Prin, F: nal.MustParse("access")}
	if err := k.SetGoal(srv, "use", "svc", goal, nil); err != nil {
		t.Fatal(err)
	}
	d := &proof.Deriver{
		Creds: []nal.Formula{grant.Formula},
		Authority: func(f nal.Formula) (string, bool) {
			if s, ok := f.(nal.Says); ok && s.P.EqualPrin(issuer.Prin) {
				return auth.Channel(), true
			}
			return "", false
		},
	}
	pf, err := d.Derive(nal.Formula(goal))
	if err != nil {
		t.Fatal(err)
	}
	k.SetProof(cli, "use", "svc", pf, []Credential{{Inline: grant.Formula}})

	if _, err := k.Call(cli, port.ID, &Msg{Op: "use", Obj: "svc"}); err != nil {
		t.Fatalf("pre-revocation: %v", err)
	}
	revoked = true
	if _, err := k.Call(cli, port.ID, &Msg{Op: "use", Obj: "svc"}); !errors.Is(err, kernel.ErrDenied) {
		t.Errorf("post-revocation: want ErrDenied, got %v", err)
	}
	revoked = false
	if _, err := k.Call(cli, port.ID, &Msg{Op: "use", Obj: "svc"}); err != nil {
		t.Errorf("re-validated: %v", err)
	}
}

// Benchmarks for the user↔kernel ABI: Session.Call versus batched
// submission through the submission/completion queue. BenchmarkBatchedIPC
// is the acceptance exhibit for the ABI redesign — per-op latency at
// batch=64 must undercut the single-call path, because the batch pushes N
// operations through one kernel entry, resolving handles and authorizing
// per-op while amortizing marshaling (one pooled arena instead of one
// allocation per call) and dispatch setup.
package nexus

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
)

// abiWorld wires the standard ABI measurement target: a guarded echo port
// behind the full dispatch pipeline (authorization on with a warm decision
// cache, interposition on — the "Nexus standard" configuration of Table 1),
// a server session, and a client session holding a channel handle.
func abiWorld(b *testing.B, opts kernel.Options) (cli *kernel.Session, ch kernel.Cap) {
	b.Helper()
	k := benchKernel(b, opts)
	k.SetGuard(guardAllowAll{})
	srv, err := k.NewSession([]byte("abi-srv"))
	if err != nil {
		b.Fatal(err)
	}
	pc, err := srv.Listen(func(kernel.Caller, *kernel.Msg) ([]byte, error) {
		return nil, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	portID, err := srv.PortOf(pc)
	if err != nil {
		b.Fatal(err)
	}
	cli, err = k.NewSession([]byte("abi-cli"))
	if err != nil {
		b.Fatal(err)
	}
	if ch, err = cli.Open(portID); err != nil {
		b.Fatal(err)
	}
	// Warm the decision cache so the measured paths are the steady state.
	if _, err := cli.Call(ch, &kernel.Msg{Op: "read", Obj: "obj"}); err != nil {
		b.Fatal(err)
	}
	return cli, ch
}

// guardAllowAll admits every request cacheably, so the warm path is the
// decision cache, exactly like the Figure 4 steady state.
type guardAllowAll struct{}

func (guardAllowAll) Check(*kernel.GuardRequest) kernel.GuardDecision {
	return kernel.GuardDecision{Allow: true, Cacheable: true}
}

// BenchmarkBatchedIPC reports per-operation latency for the single-call
// path and for batched submission at depths 1, 8, and 64. Every reported
// ns/op is one IPC operation, whichever entry shape carried it.
func BenchmarkBatchedIPC(b *testing.B) {
	arg := make([]byte, 64)
	b.Run("single", func(b *testing.B) {
		cli, ch := abiWorld(b, kernel.Options{})
		m := &kernel.Msg{Op: "read", Obj: "obj", Args: [][]byte{arg}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cli.Call(ch, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, depth := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch%d", depth), func(b *testing.B) {
			cli, ch := abiWorld(b, kernel.Options{})
			subs := make([]kernel.Sub, depth)
			for i := range subs {
				subs[i] = kernel.Sub{Cap: ch, Op: "read", Obj: "obj", Args: [][]byte{arg}}
			}
			comps := make([]kernel.Completion, 0, depth)
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += depth {
				n := depth
				if rem := b.N - done; rem < n {
					n = rem
				}
				out, err := cli.Submit(nil, subs[:n], comps)
				if err != nil {
					b.Fatal(err)
				}
				for j := range out {
					if out[j].Err != nil {
						b.Fatal(out[j].Err)
					}
				}
			}
		})
	}
}

// BenchmarkBatchedSyscall measures object-handle submission — batched,
// authorization-checked null operations — against the per-call syscall
// path, isolating the ABI entry overhead with no handler work at all.
func BenchmarkBatchedSyscall(b *testing.B) {
	k := benchKernel(b, kernel.Options{})
	k.SetGuard(guardAllowAll{})
	s, err := k.NewSession([]byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Null(); err != nil {
		b.Fatal(err)
	}
	b.Run("null-call", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Null()
		}
	})
	b.Run("null-batch64", func(b *testing.B) {
		obj, err := s.OpenObject("null")
		if err != nil {
			b.Fatal(err)
		}
		subs := make([]kernel.Sub, 64)
		for i := range subs {
			subs[i] = kernel.Sub{Cap: obj, Op: "null"}
		}
		comps := make([]kernel.Completion, 0, 64)
		if _, err := s.Submit(nil, subs[:1], comps); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for done := 0; done < b.N; done += 64 {
			n := 64
			if rem := b.N - done; rem < n {
				n = rem
			}
			if _, err := s.Submit(nil, subs[:n], comps); err != nil {
				b.Fatal(err)
			}
		}
	})
}

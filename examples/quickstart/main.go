// Quickstart: boot a simulated Nexus, create principals, issue labels,
// guard a resource with a goal formula, construct a proof, and watch the
// guard admit and refuse requests — all through the typed Session ABI:
// user code holds capability handles (nexus.Cap), never kernel pointers.
package main

import (
	"errors"
	"fmt"
	"log"

	nexus "repro"
	"repro/internal/nal"
	"repro/internal/nal/proof"
)

func main() {
	// 1. Platform: TPM + disk + measured boot.
	t, err := nexus.NewTPM(0)
	if err != nil {
		log.Fatal(err)
	}
	k, err := nexus.Boot(t, nexus.NewDisk(), nexus.Options{})
	if err != nil {
		log.Fatal(err)
	}
	k.SetGuard(nexus.NewGuard(k))
	fmt.Println("booted Nexus; kernel principal:", k.Prin)

	// 2. Sessions: a server owning a resource and two clients. Listen
	// returns a capability handle; the port's public name is shared with
	// clients, who Open it into handles of their own.
	server, _ := k.NewSession([]byte("file-server"))
	alice, _ := k.NewSession([]byte("alice-app"))
	mallory, _ := k.NewSession([]byte("mallory-app"))
	srvCap, _ := server.Listen(func(from nexus.Caller, m *nexus.Msg) ([]byte, error) {
		return []byte("the secret contents"), nil
	})
	portID, _ := server.PortOf(srvCap)
	aliceCh, _ := alice.Open(portID)
	malloryCh, _ := mallory.Open(portID)

	// 3. Policy: reading "vault" requires a certifier's blessing of the
	// subject. ?S is bound to the requesting principal by the guard.
	certifier, _ := k.NewSession([]byte("certifier"))
	goal := nal.Says{P: certifier.Prin(), F: nal.Pred{
		Name: "vetted", Args: []nal.Term{nal.Var("S")},
	}}
	if err := server.SetGoal("read", "vault", goal, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("goal formula:", goal)

	// 4. Credential: the certifier vouches for alice — a label in NAL.
	label, _ := certifier.SayFormula(nal.Pred{
		Name: "vetted", Args: []nal.Term{nal.PrinTerm{P: alice.Prin()}},
	})
	fmt.Println("credential:  ", label.Formula)

	// 5. Proof: alice derives the instantiated goal from her credential and
	// registers it for the access tuple.
	instantiated := nal.Says{P: certifier.Prin(), F: nal.Pred{
		Name: "vetted", Args: []nal.Term{nal.PrinTerm{P: alice.Prin()}},
	}}
	d := &proof.Deriver{Creds: []nal.Formula{label.Formula}}
	pf, err := d.Derive(instantiated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("proof:")
	fmt.Print(pf)
	alice.SetProof("read", "vault", pf, []nexus.Credential{{Inline: label.Formula}})

	// 6. Access: alice passes; mallory (no proof) is refused with a typed
	// EACCES that still matches the ErrDenied sentinel.
	out, err := alice.Call(aliceCh, &nexus.Msg{Op: "read", Obj: "vault"})
	fmt.Printf("alice reads:   %q (err=%v)\n", out, err)
	_, err = mallory.Call(malloryCh, &nexus.Msg{Op: "read", Obj: "vault"})
	fmt.Printf("mallory reads: errno=%v (ErrDenied=%v)\n",
		nexus.ErrnoOf(err), errors.Is(err, nexus.ErrDenied))

	// 7. The decision was cacheable: repeated access skips the guard.
	before := k.GuardUpcalls()
	for i := 0; i < 1000; i++ {
		alice.Call(aliceCh, &nexus.Msg{Op: "read", Obj: "vault"})
	}
	fmt.Printf("guard upcalls for 1000 repeat reads: %d (decision cache)\n",
		k.GuardUpcalls()-before)

	// 8. Batched submission: push a burst of reads through one kernel
	// entry. Authorization still runs per operation; marshaling and
	// dispatch overhead are amortized across the batch.
	q := alice.NewQueue(64)
	for i := 0; i < 64; i++ {
		q.Push(nexus.Sub{Cap: aliceCh, Op: "read", Obj: "vault", Tag: uint64(i)})
	}
	comps := q.Flush(nil)
	ok := 0
	for _, c := range comps {
		if c.Err == nil {
			ok++
		}
	}
	fmt.Printf("batched submit: %d/%d completions ok\n", ok, len(comps))
}

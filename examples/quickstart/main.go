// Quickstart: boot a simulated Nexus, create principals, issue labels,
// guard a resource with a goal formula, construct a proof, and watch the
// guard admit and refuse requests.
package main

import (
	"fmt"
	"log"

	nexus "repro"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
)

func main() {
	// 1. Platform: TPM + disk + measured boot.
	t, err := nexus.NewTPM(0)
	if err != nil {
		log.Fatal(err)
	}
	k, err := nexus.Boot(t, nexus.NewDisk(), nexus.Options{})
	if err != nil {
		log.Fatal(err)
	}
	k.SetGuard(nexus.NewGuard(k))
	fmt.Println("booted Nexus; kernel principal:", k.Prin)

	// 2. Processes: a server owning a resource and two clients.
	server, _ := k.CreateProcess(0, []byte("file-server"))
	alice, _ := k.CreateProcess(0, []byte("alice-app"))
	mallory, _ := k.CreateProcess(0, []byte("mallory-app"))
	port, _ := k.CreatePort(server, func(from *nexus.Process, m *nexus.Msg) ([]byte, error) {
		return []byte("the secret contents"), nil
	})

	// 3. Policy: reading "vault" requires a certifier's blessing of the
	// subject. ?S is bound to the requesting principal by the guard.
	certifier, _ := k.CreateProcess(0, []byte("certifier"))
	goal := nal.Says{P: certifier.Prin, F: nal.Pred{
		Name: "vetted", Args: []nal.Term{nal.Var("S")},
	}}
	if err := k.SetGoal(server, "read", "vault", goal, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("goal formula:", goal)

	// 4. Credential: the certifier vouches for alice — a label in NAL.
	label, _ := certifier.Labels.SayFormula(nal.Pred{
		Name: "vetted", Args: []nal.Term{nal.PrinTerm{P: alice.Prin}},
	})
	fmt.Println("credential:  ", label.Formula)

	// 5. Proof: alice derives the instantiated goal from her credential and
	// registers it for the access tuple.
	instantiated := nal.Says{P: certifier.Prin, F: nal.Pred{
		Name: "vetted", Args: []nal.Term{nal.PrinTerm{P: alice.Prin}},
	}}
	d := &proof.Deriver{Creds: []nal.Formula{label.Formula}}
	pf, err := d.Derive(instantiated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("proof:")
	fmt.Print(pf)
	k.SetProof(alice, "read", "vault", pf, []kernel.Credential{{Inline: label.Formula}})

	// 6. Access: alice passes; mallory (no proof) is refused.
	out, err := k.Call(alice, port.ID, &nexus.Msg{Op: "read", Obj: "vault"})
	fmt.Printf("alice reads:   %q (err=%v)\n", out, err)
	_, err = k.Call(mallory, port.ID, &nexus.Msg{Op: "read", Obj: "vault"})
	fmt.Printf("mallory reads: err=%v\n", err)

	// 7. The decision was cacheable: repeated access skips the guard.
	before := k.GuardUpcalls()
	for i := 0; i < 1000; i++ {
		k.Call(alice, port.ID, &nexus.Msg{Op: "read", Obj: "vault"})
	}
	fmt.Printf("guard upcalls for 1000 repeat reads: %d (decision cache)\n",
		k.GuardUpcalls()-before)
}

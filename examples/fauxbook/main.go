// Fauxbook demo: deploy the privacy-preserving social network on a
// simulated Nexus, exercise the §4.1 guarantees, and show the certification
// labels a user would inspect before signing up.
package main

import (
	"fmt"
	"log"

	nexus "repro"
	"repro/internal/fauxbook"
	"repro/internal/fsys"
	"repro/internal/sched"
)

func main() {
	t, err := nexus.NewTPM(0)
	if err != nil {
		log.Fatal(err)
	}
	k, err := nexus.Boot(t, nexus.NewDisk(), nexus.Options{})
	if err != nil {
		log.Fatal(err)
	}
	k.SetGuard(nexus.NewGuard(k))
	fs, err := fsys.New(k)
	if err != nil {
		log.Fatal(err)
	}

	// Deploying malicious tenant code fails certification outright.
	if _, err := fauxbook.New(k, fs, fauxbook.EvilTenant); err != nil {
		fmt.Println("evil tenant rejected at deploy time:", err)
	}

	svc, err := fauxbook.New(k, fs, fauxbook.DefaultTenant)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncertification labels (published for prospective users):")
	for _, l := range svc.TenantLabels() {
		fmt.Println(" ", l)
	}

	// Resource attestation: the cloud provider's scheduler exports tenant
	// reservations through introspection (§4.1).
	cpu := sched.New()
	cpu.SetWeight("fauxbook", 3)
	cpu.SetWeight("other-tenant", 1)
	cpu.Publish(k.Introsp, k.Prin)
	if lbl, err := cpu.ReservationLabel(k.Prin, "fauxbook"); err == nil {
		fmt.Println("\nresource attestation label:")
		fmt.Println(" ", lbl)
	}

	// Users.
	for _, u := range []string{"alice", "bob", "eve"} {
		if err := svc.Signup(u, u+"-password"); err != nil {
			log.Fatal(err)
		}
	}
	at, _ := svc.Login("alice", "alice-password")
	bt, _ := svc.Login("bob", "bob-password")
	et, _ := svc.Login("eve", "eve-password")

	svc.Post(at, []byte("alice: had a great day at SOSP 2011"))
	svc.AddFriend(at, "bob")

	page, err := svc.Wall(bt, "alice")
	fmt.Printf("\nbob (friend) reads alice's wall:\n%s", page)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := svc.Wall(et, "alice"); err != nil {
		fmt.Println("eve (stranger) reads alice's wall: DENIED:", err)
	}

	// The developers' code never sees plaintext: it manipulates cobufs.
	// Demonstrate by persisting and reloading through the filesystem.
	if err := svc.PersistWall("alice"); err != nil {
		log.Fatal(err)
	}
	if err := svc.LoadWall("alice"); err != nil {
		log.Fatal(err)
	}
	page, _ = svc.Wall(at, "alice")
	fmt.Printf("\nalice reads her reloaded wall:\n%s", page)
}

// Movieplayer demo: stream protected content to an arbitrary player binary
// that proves channel isolation instead of presenting a whitelisted hash —
// the §4 answer to platform lock-down.
package main

import (
	"fmt"
	"log"

	nexus "repro"
	"repro/internal/apps/movieplayer"
	"repro/internal/ipcgraph"
)

func main() {
	t, err := nexus.NewTPM(0)
	if err != nil {
		log.Fatal(err)
	}
	k, err := nexus.Boot(t, nexus.NewDisk(), nexus.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fsDrv, _ := k.NewSession([]byte("disk-driver"))
	netDrv, _ := k.NewSession([]byte("net-driver"))
	echo := func(nexus.Caller, *nexus.Msg) ([]byte, error) { return nil, nil }
	netCap, _ := netDrv.Listen(echo)
	fsDrv.Listen(echo)
	netPort, _ := netDrv.PortOf(netCap)
	k.EnforceChannels(true)

	analyzer, err := ipcgraph.New(k)
	if err != nil {
		log.Fatal(err)
	}
	owner := movieplayer.NewContentOwner(k, fsDrv, netDrv, []byte("4K-MOVIE-STREAM"))

	// A user's unheard-of player binary: never whitelisted, but isolated.
	player, _ := k.NewSession([]byte("obscure-open-source-player-v0.1"))
	fmt.Println("player goal:", owner.Goal(player))
	content, err := movieplayer.RequestStream(k, analyzer, owner, player)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isolated player streams %q — no hash disclosed\n", content)

	// A player that acquired a network channel is refused.
	leaky, _ := k.NewSession([]byte("leaky-player"))
	leaky.Open(netPort)
	if _, err := movieplayer.RequestStream(k, analyzer, owner, leaky); err != nil {
		fmt.Println("leaky player refused:", err)
	}
}

// Bgpverify demo: an external security monitor straddles a legacy BGP
// speaker, letting conforming announcements through and catching route
// fabrication and false origination (§4).
package main

import (
	"fmt"
	"log"

	nexus "repro"
	"repro/internal/apps/bgp"
)

func main() {
	t, err := nexus.NewTPM(0)
	if err != nil {
		log.Fatal(err)
	}
	k, err := nexus.Boot(t, nexus.NewDisk(), nexus.Options{})
	if err != nil {
		log.Fatal(err)
	}

	v, err := bgp.NewVerifier(k, 65001, []string{"10.10.0.0/16"})
	if err != nil {
		log.Fatal(err)
	}

	// The legacy speaker hears routes from its peers.
	v.Inbound(&bgp.Announcement{Prefix: "172.16.0.0/12", Path: []int{65002, 65003, 65004}})
	v.Inbound(&bgp.Announcement{Prefix: "192.0.2.0/24", Path: []int{65005}})

	try := func(a *bgp.Announcement) {
		if err := v.Outbound(a); err != nil {
			fmt.Printf("BLOCKED  %-18s via %v: %v\n", a.Prefix, a.Path, err)
		} else {
			fmt.Printf("forward  %-18s via %v\n", a.Prefix, a.Path)
		}
	}
	// Legitimate origination and propagation.
	try(&bgp.Announcement{Prefix: "10.10.0.0/16", Path: []int{65001}})
	try(&bgp.Announcement{Prefix: "172.16.0.0/12", Path: []int{65001, 65002, 65003, 65004}})
	// Attacks.
	try(&bgp.Announcement{Prefix: "192.0.2.0/24", Path: []int{65001}})                // false origination
	try(&bgp.Announcement{Prefix: "172.16.0.0/12", Path: []int{65001, 65004}})        // shortened route
	try(&bgp.Announcement{Prefix: "172.16.0.0/12", Path: []int{65001, 65009, 65004}}) // spliced path

	acc, rej := v.Stats()
	fmt.Printf("\naccepted=%d rejected=%d\n", acc, rej)
	if _, err := v.ConformanceLabel(); err != nil {
		fmt.Println("conformance label refused (violations observed):", err)
	}
}

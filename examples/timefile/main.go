// Timefile runs the paper's §2 worked example end to end: a file whose
// contents must be read before a deadline, by a process that provably
// cannot leak them to disk or network.
//
// The goal formula combines three conditions:
//
//	Owner says TimeNow < deadline      (via scoped delegation to a clock
//	                                    authority — never a cached label)
//	?S says openFile(file)             (the request itself)
//	SafetyCertifier says safe(?S)      (derived from IPC-analyzer labels)
package main

import (
	"fmt"
	"log"

	nexus "repro"
	"repro/internal/ipcgraph"
	"repro/internal/nal"
	"repro/internal/nal/proof"
)

func main() {
	t, err := nexus.NewTPM(0)
	if err != nil {
		log.Fatal(err)
	}
	k, err := nexus.Boot(t, nexus.NewDisk(), nexus.Options{})
	if err != nil {
		log.Fatal(err)
	}
	k.SetGuard(nexus.NewGuard(k))

	owner, _ := k.NewSession([]byte("owner"))
	reader, _ := k.NewSession([]byte("reader"))
	fsDrv, _ := k.NewSession([]byte("disk-driver"))
	netDrv, _ := k.NewSession([]byte("net-driver"))
	clock, _ := k.NewSession([]byte("ntp"))
	server, _ := k.NewSession([]byte("secret-file-server"))
	echo := func(nexus.Caller, *nexus.Msg) ([]byte, error) { return []byte("SECRET"), nil }
	srvCap, _ := server.Listen(echo)
	fsDrv.Listen(echo)
	netDrv.Listen(echo)
	k.EnforceChannels(true)
	// The reader opens a channel to the file server only; the analyzer will
	// confirm it has no path to the disk or network drivers.
	portID, _ := server.PortOf(srvCap)
	readerCh, err := reader.Open(portID)
	if err != nil {
		log.Fatal(err)
	}

	// The clock authority subscribes to one statement family and answers
	// live — it never signs a label that could go stale (§2.7).
	deadlineOpen := true
	ntpAuth, err := clock.RegisterAuthority(func(f nal.Formula) bool {
		return deadlineOpen && f.Equal(nal.Says{P: clock.Prin(), F: nal.MustParse("TimeNow < @2026-07-01")})
	})
	if err != nil {
		log.Fatal(err)
	}

	// Owner trusts the clock on TimeNow statements only.
	deleg, _ := owner.SayFormula(nal.SpeaksFor{
		A: clock.Prin(), B: owner.Prin(), On: &nal.Pattern{Pred: "TimeNow"},
	})

	// The safety certifier turns IPC-analysis labels into safe(X).
	analyzer, _ := ipcgraph.New(k)
	certifier, _ := k.NewSession([]byte("safety-certifier"))
	noFS, err := analyzer.CertifyNoPath(reader, fsDrv)
	if err != nil {
		log.Fatal(err)
	}
	noNet, err := analyzer.CertifyNoPath(reader, netDrv)
	if err != nil {
		log.Fatal(err)
	}
	safety, _ := certifier.SayFormula(nal.Pred{
		Name: "safe", Args: []nal.Term{nal.PrinTerm{P: reader.Prin()}},
	})
	fmt.Println("analysis labels:")
	fmt.Println(" ", noFS.Formula)
	fmt.Println(" ", noNet.Formula)
	fmt.Println(" ", safety.Formula)

	// The paper's goal formula, with guard variables.
	goal := nal.Conj(
		nal.Says{P: owner.Prin(), F: nal.MustParse("TimeNow < @2026-07-01")},
		nal.MustParse(`?S says openFile("/secret")`),
		nal.Says{P: certifier.Prin(), F: nal.Pred{Name: "safe", Args: []nal.Term{nal.Var("S")}}},
	)
	if err := server.SetGoal("open", "file:/secret", goal, nil); err != nil {
		log.Fatal(err)
	}

	// The reader assembles credentials and derives the proof.
	request, _ := reader.SayFormula(nal.MustParse(`openFile("/secret")`))
	creds := []nal.Formula{deleg.Formula, request.Formula, safety.Formula}
	inst := nal.Subst{"S": nal.PrinTerm{P: reader.Prin()}}.Apply(goal)
	d := &proof.Deriver{
		Creds:      creds,
		TrustRoots: []nal.Principal{k.Prin},
		Authority: func(f nal.Formula) (string, bool) {
			if s, ok := f.(nal.Says); ok && s.P.EqualPrin(clock.Prin()) {
				return ntpAuth.Channel(), true
			}
			return "", false
		},
	}
	pf, err := d.Derive(inst)
	if err != nil {
		log.Fatal(err)
	}
	var kcreds []nexus.Credential
	for _, c := range creds {
		kcreds = append(kcreds, nexus.Credential{Inline: c})
	}
	reader.SetProof("open", "file:/secret", pf, kcreds)

	out, err := reader.Call(readerCh, &nexus.Msg{Op: "open", Obj: "file:/secret"})
	fmt.Printf("before deadline: read %q (err=%v)\n", out, err)

	// The deadline passes; the very next request fails — no revocation
	// infrastructure needed, the authority simply stops affirming.
	deadlineOpen = false
	_, err = reader.Call(readerCh, &nexus.Msg{Op: "open", Obj: "file:/secret"})
	fmt.Printf("after deadline:  errno=%v\n", nexus.ErrnoOf(err))
}

package nexus

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
	"repro/internal/tpm"
)

// TestPublicAPIEndToEnd exercises the whole public surface: boot, guarded
// access with a derived proof, label externalization across machines, and
// attested storage surviving a reboot.
func TestPublicAPIEndToEnd(t *testing.T) {
	tp, err := NewTPM(0)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDisk()
	k, err := Boot(tp, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k.SetGuard(NewGuard(k))

	// Guarded resource with a formula parsed from the public API.
	server, _ := k.CreateProcess(0, []byte("srv"))
	client, _ := k.CreateProcess(0, []byte("cli"))
	port, _ := k.CreatePort(server, func(Caller, *Msg) ([]byte, error) {
		return []byte("ok"), nil
	})
	goal := MustFormula("?S says wantsAccess")
	if err := k.SetGoal(server, "read", "vault", goal, nil); err != nil {
		t.Fatal(err)
	}
	cred, _ := client.Labels.Say("wantsAccess")
	deriver := &Deriver{Creds: []Formula{cred.Formula}}
	pf, err := deriver.Derive(nal.Says{P: client.Prin, F: nal.Pred{Name: "wantsAccess"}})
	if err != nil {
		t.Fatal(err)
	}
	k.SetProof(client, "read", "vault", pf, []Credential{{Inline: cred.Formula}})
	out, err := k.Call(client, port.ID, &Msg{Op: "read", Obj: "vault"})
	if err != nil || !bytes.Equal(out, []byte("ok")) {
		t.Fatalf("guarded call = %q, %v", out, err)
	}

	// Proof text round trip through the public API.
	pf2, err := ParseProof(pf.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckProof(pf2, pf.Conclusion(), &ProofEnv{Credentials: []Formula{cred.Formula}}); err != nil {
		t.Fatal(err)
	}

	// Externalize a label and verify it on another machine.
	ext, err := client.Labels.Externalize(cred.Handle)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := kernel.VerifyExternalLabels(ext, tp.EKFingerprint())
	if err != nil || len(labels) != 2 {
		t.Fatalf("external chain = %v, %v", labels, err)
	}
}

func TestPublicAPIStorageLifecycle(t *testing.T) {
	tp, _ := NewTPM(0)
	tp.Extend(tpm.PCRKernel, []byte("nexus"))
	if err := tp.TakeOwnership([]tpm.PCRIndex{tpm.PCRKernel}); err != nil {
		t.Fatal(err)
	}
	d := NewDisk()
	st, err := InitStorage(tp, d)
	if err != nil {
		t.Fatal(err)
	}
	ks := NewKeyStore()
	key, _ := ks.Create(0) // KeyAES
	region, err := st.CreateRegion("tokens", 2, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := region.Write(0, []byte("cookie")); err != nil {
		t.Fatal(err)
	}
	// Power cycle + recovery.
	tp.Startup()
	tp.Extend(tpm.PCRKernel, []byte("nexus"))
	if _, err := RecoverStorage(tp, d); err != nil {
		t.Fatal(err)
	}
	// A replayed disk is detected.
	img := d.Snapshot()
	region.Write(0, []byte("newer "))
	d.Restore(img)
	tp.Startup()
	tp.Extend(tpm.PCRKernel, []byte("nexus"))
	if _, err := RecoverStorage(tp, d); err == nil {
		t.Fatal("replayed disk must abort recovery")
	}
}

func TestPublicAPIParsers(t *testing.T) {
	if _, err := ParseFormula("A says ok"); err != nil {
		t.Error(err)
	}
	if _, err := ParseFormula("((("); err == nil {
		t.Error("bad formula accepted")
	}
	p, err := ParsePrincipal("kernel.ipd.7")
	if err != nil || p.String() != "kernel.ipd.7" {
		t.Errorf("ParsePrincipal = %v, %v", p, err)
	}
}

// TestDecisionCacheInvalidationMatrix drives the §2.8 invalidation design
// through the public kernel API: proof updates clear one entry, goal
// updates clear the (op, obj) subregion, and unrelated resources are
// unaffected.
func TestDecisionCacheInvalidationMatrix(t *testing.T) {
	tp, _ := NewTPM(0)
	k, err := Boot(tp, NewDisk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	k.SetGuard(NewGuard(k))
	srv, _ := k.CreateProcess(0, []byte("srv"))
	c1, _ := k.CreateProcess(0, []byte("c1"))
	c2, _ := k.CreateProcess(0, []byte("c2"))
	port, _ := k.CreatePort(srv, func(Caller, *Msg) ([]byte, error) { return nil, nil })

	goal := MustFormula("?S says wantsAccess")
	arm := func(cli *Process, obj string) {
		cred := nal.Says{P: cli.Prin, F: nal.Pred{Name: "wantsAccess"}}
		k.SetProof(cli, "read", obj, proof.Assume(0, cred), []Credential{{Inline: cred}})
	}
	for _, obj := range []string{"objA", "objB"} {
		if err := k.SetGoal(srv, "read", obj, goal, nil); err != nil {
			t.Fatal(err)
		}
		arm(c1, obj)
		arm(c2, obj)
	}
	call := func(cli *Process, obj string) {
		if _, err := k.Call(cli, port.ID, &Msg{Op: "read", Obj: obj}); err != nil {
			t.Fatalf("call %s/%s: %v", cli.Prin, obj, err)
		}
	}
	// Warm all four tuples.
	for _, cli := range []*Process{c1, c2} {
		for _, obj := range []string{"objA", "objB"} {
			call(cli, obj)
		}
	}
	base := k.GuardUpcalls()
	// All cached now.
	call(c1, "objA")
	call(c2, "objB")
	if k.GuardUpcalls() != base {
		t.Fatal("warm tuples should not upcall")
	}
	// Proof update for (c1, objA) invalidates exactly that entry.
	arm(c1, "objA")
	call(c2, "objA") // other subject unaffected
	call(c1, "objB") // other object unaffected
	if k.GuardUpcalls() != base {
		t.Error("proof update invalidated unrelated entries")
	}
	call(c1, "objA")
	if k.GuardUpcalls() != base+1 {
		t.Error("proof update did not invalidate its own entry")
	}
	// Goal update clears every subject's entry for (read, objB).
	if err := k.SetGoal(srv, "read", "objB", goal, nil); err != nil {
		t.Fatal(err)
	}
	base = k.GuardUpcalls()
	call(c1, "objB")
	call(c2, "objB")
	if k.GuardUpcalls() != base+2 {
		t.Error("goal update must invalidate all subjects for the resource")
	}
}

func TestDeniedWithoutGuard(t *testing.T) {
	tp, _ := NewTPM(0)
	k, _ := Boot(tp, NewDisk(), Options{})
	srv, _ := k.CreateProcess(0, []byte("srv"))
	cli, _ := k.CreateProcess(0, []byte("cli"))
	port, _ := k.CreatePort(srv, func(Caller, *Msg) ([]byte, error) { return nil, nil })
	if err := k.SetGoal(srv, "read", "x", MustFormula("a"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Call(cli, port.ID, &Msg{Op: "read", Obj: "x"}); !errors.Is(err, kernel.ErrNoGuard) {
		t.Errorf("want ErrNoGuard, got %v", err)
	}
}

//go:build race

package nexus

// raceEnabled reports whether the race detector instruments this build.
// The allocation pins that depend on sync.Pool caching skip under it: the
// runtime deliberately randomizes pool reuse in race mode, so pooled
// paths allocate there by design, not by regression.
const raceEnabled = true

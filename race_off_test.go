//go:build !race

package nexus

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false

// Allocation-regression pins for the dispatch hot paths. These are hard
// ceilings, not aspirations: a change that adds an allocation to a pinned
// path fails here before it shows up as a throughput regression in the
// Figure 4/Table 1 benchmarks.
package nexus

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/ledger"
	"repro/internal/nal/proof"
	"repro/internal/tpm"
)

// allocKernel boots a kernel for allocation measurement.
func allocKernel(t *testing.T, opts kernel.Options) *kernel.Kernel {
	return allocKernelTB(t, opts)
}

func allocKernelTB(t testing.TB, opts kernel.Options) *kernel.Kernel {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestAllocSyscallBare pins the interposition-off, authorization-off
// syscall fast path (Table 1 "bare") at zero allocations per call.
func TestAllocSyscallBare(t *testing.T) {
	k := allocKernel(t, kernel.Options{NoInterposition: true, NoAuthorization: true})
	p, _ := k.CreateProcess(0, []byte("bench"))
	if err := p.Null(); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() { p.Null() }); allocs != 0 {
		t.Errorf("bare null syscall allocates %.1f objects/op, want 0", allocs)
	}
}

// TestAllocSyscallWarmAuthz pins the interposition-off syscall path with
// authorization on and the decision cache warm — the Figure 4 "system
// call" steady state — at zero allocations per call.
func TestAllocSyscallWarmAuthz(t *testing.T) {
	k := allocKernel(t, kernel.Options{NoInterposition: true})
	p, _ := k.CreateProcess(0, []byte("bench"))
	if err := p.Null(); err != nil { // warm the decision cache
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() { p.Null() }); allocs != 0 {
		t.Errorf("warm authorized null syscall allocates %.1f objects/op, want 0", allocs)
	}
}

// TestAllocSyscallWarmAuthzObserved pins the same warm authorized path
// with the full observability plane engaged — metrics always on, a durable
// ledger attached behind the audit log — at zero allocations. The plane's
// contract is that only miss and transport paths are instrumented; this is
// the test that holds it to that.
func TestAllocSyscallWarmAuthzObserved(t *testing.T) {
	k := allocKernel(t, kernel.Options{NoInterposition: true})
	l, err := ledger.New(ledger.NewMemBackend(), ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k.AttachLedger(l)
	p, _ := k.CreateProcess(0, []byte("bench"))
	if err := p.Null(); err != nil { // warm the decision cache
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() { p.Null() }); allocs != 0 {
		t.Errorf("warm authorized null syscall with metrics+ledger allocates %.1f objects/op, want 0", allocs)
	}
	if s := k.Metrics(); s.DCacheLookups == 0 {
		t.Error("metrics plane not live during the pinned run")
	}
}

// TestAllocMarshalMsg pins parameter marshaling — the per-call cost
// interpositioning imposes (§5.1) — at one allocation (the wire buffer).
func TestAllocMarshalMsg(t *testing.T) {
	m := &kernel.Msg{Op: "write", Obj: "file:/x", Args: [][]byte{make([]byte, 64)}}
	if allocs := testing.AllocsPerRun(200, func() { kernel.MarshalMsgForBench(m) }); allocs > 1 {
		t.Errorf("marshalMsg allocates %.1f objects/op, want ≤ 1", allocs)
	}
}

// abiAllocWorld wires a session world for allocation pinning: echo server,
// client channel handle, guard admitting everything cacheably, decision
// cache warm.
func abiAllocWorld(t *testing.T, opts kernel.Options) (*kernel.Session, kernel.Cap) {
	t.Helper()
	k := allocKernel(t, opts)
	k.SetGuard(guardAllowAll{})
	srv, err := k.NewSession([]byte("srv"))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := srv.Listen(func(kernel.Caller, *kernel.Msg) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	id, _ := srv.PortOf(pc)
	cli, err := k.NewSession([]byte("cli"))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := cli.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(ch, &kernel.Msg{Op: "read", Obj: "obj"}); err != nil {
		t.Fatal(err)
	}
	return cli, ch
}

// TestAllocSessionCallFast pins the Session.Call fast path — handle
// resolve + warm authorized dispatch, interposition off — at zero
// allocations: holding rights in a per-process handle table costs nothing
// on the warm path beyond one shard read-lock.
func TestAllocSessionCallFast(t *testing.T) {
	cli, ch := abiAllocWorld(t, kernel.Options{NoInterposition: true})
	m := &kernel.Msg{Op: "read", Obj: "obj"}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := cli.Call(ch, m); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm Session.Call allocates %.1f objects/op, want 0", allocs)
	}
}

// TestAllocSessionCallInterposed pins the full-pipeline Session.Call —
// channel check, warm authorization, interposition marshal — at zero
// allocations: the wire copy shown to monitors is appended into a pooled
// arena, so turning interposition on costs cycles, not garbage. This is
// the regression pin for the BENCH_net call/local row.
func TestAllocSessionCallInterposed(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool reuse is randomized under the race detector")
	}
	cli, ch := abiAllocWorld(t, kernel.Options{})
	m := &kernel.Msg{Op: "read", Obj: "obj", Args: [][]byte{make([]byte, 64)}}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := cli.Call(ch, m); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm interposed Session.Call allocates %.1f objects/op, want 0", allocs)
	}
}

// TestAllocBatchedSubmitWarm pins the warm batched-submit path: with the
// full pipeline on (interposition + warm authorization), per-op allocations
// at batch=64 must not exceed the single-call path — the batch marshals
// into a pooled arena and reuses the caller's completion queue, so batching
// can only shed allocation, never add it.
func TestAllocBatchedSubmitWarm(t *testing.T) {
	cli, ch := abiAllocWorld(t, kernel.Options{})
	arg := make([]byte, 64)
	m := &kernel.Msg{Op: "read", Obj: "obj", Args: [][]byte{arg}}
	single := testing.AllocsPerRun(200, func() {
		if _, err := cli.Call(ch, m); err != nil {
			t.Fatal(err)
		}
	})

	const depth = 64
	subs := make([]kernel.Sub, depth)
	for i := range subs {
		subs[i] = kernel.Sub{Cap: ch, Op: "read", Obj: "obj", Args: [][]byte{arg}}
	}
	comps := make([]kernel.Completion, 0, depth)
	batch := testing.AllocsPerRun(50, func() {
		out, err := cli.Submit(nil, subs, comps)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i].Err != nil {
				t.Fatal(out[i].Err)
			}
		}
	})
	perOp := batch / depth
	// The batch entry's one reusable Msg escapes per Submit call; amortized
	// over the batch that is the only per-op cost batching may add to the
	// (now zero-alloc) single-call path.
	if perOp > single+1.0/depth {
		t.Errorf("batched submit allocates %.2f objects/op, single-call path %.2f", perOp, single)
	}
	// Absolute ceiling: the amortized batch path must stay near zero even
	// with marshaling on (one Msg escape + pool jitter across 64 ops).
	if perOp > 0.25 {
		t.Errorf("batched submit allocates %.2f objects/op, want ≤ 0.25", perOp)
	}
}

// remoteAllocWorld wires a two-kernel loopback world for transport
// allocation pinning: echo service exported by one node, dialed by the
// other, connection warm (handshake done, channel freelist and frame pool
// primed by a burst of calls).
func remoteAllocWorld(t testing.TB) (*kernel.Session, kernel.Cap) {
	t.Helper()
	kSrv := allocKernelTB(t, kernel.Options{})
	kSrv.SetGuard(guardAllowAll{})
	kCli := allocKernelTB(t, kernel.Options{})
	srv, err := kSrv.NewSession([]byte("srv"))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := srv.Listen(func(kernel.Caller, *kernel.Msg) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	port, _ := srv.PortOf(pc)
	lt := kernel.NewLoopbackTransport()
	nSrv := kernel.NewNode(kSrv)
	l, err := lt.Listen("alloc")
	if err != nil {
		t.Fatal(err)
	}
	nSrv.Serve(l)
	t.Cleanup(nSrv.Close)
	if err := nSrv.Export("echo", port); err != nil {
		t.Fatal(err)
	}
	nCli := kernel.NewNode(kCli)
	t.Cleanup(nCli.Close)
	peer, err := nCli.Dial(lt, "alloc")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := kCli.NewSession([]byte("cli"))
	if err != nil {
		t.Fatal(err)
	}
	rc, err := cli.Connect(peer, "echo")
	if err != nil {
		t.Fatal(err)
	}
	m := &kernel.Msg{Op: "read", Obj: "obj"}
	for i := 0; i < 64; i++ {
		if _, err := cli.CallRemote(rc, m); err != nil {
			t.Fatal(err)
		}
	}
	return cli, rc
}

// TestAllocRemoteCallWarm pins the warm cross-node call over the loopback
// transport at ≤2 allocations per op, both endpoints included. The request
// frame stages in a pooled egress buffer, the pending-call channel comes
// from the connection's freelist, and the request buffer recirculates
// through the server's ingress arena back to the frame pool; the only
// inherent allocation left is the response frame, which escapes to the
// caller. This is the regression pin for the BENCH_net
// call/remote-loopback row and the static //nexus:noalloc egress roots.
func TestAllocRemoteCallWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("cross-goroutine pool reuse is perturbed under the race detector")
	}
	cli, rc := remoteAllocWorld(t)
	m := &kernel.Msg{Op: "read", Obj: "obj"}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := cli.CallRemote(rc, m); err != nil {
			t.Fatal(err)
		}
	}); allocs > 2 {
		t.Errorf("warm remote call allocates %.1f objects/op, want ≤ 2", allocs)
	}
}

// TestAllocSubmitRemoteBatchWarm pins the batched remote submission path
// at effectively zero allocations per operation: the batch frame builds in
// one pooled buffer whose ownership transfers to the egress combiner, the
// completion queue is reused, and per-batch costs (the sent-index slice,
// the response frame) amortize across the 64 operations. This is the
// regression pin for the BENCH_net submit-remote/batch64 row.
func TestAllocSubmitRemoteBatchWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("cross-goroutine pool reuse is perturbed under the race detector")
	}
	cli, rc := remoteAllocWorld(t)
	const depth = 64
	subs := make([]kernel.Sub, depth)
	for i := range subs {
		subs[i] = kernel.Sub{Cap: rc, Op: "read", Obj: "obj", Tag: uint64(i)}
	}
	comps := make([]kernel.Completion, 0, depth)
	run := func() {
		out, err := cli.SubmitRemote(nil, rc, subs, comps)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i].Err != nil {
				t.Fatal(out[i].Err)
			}
		}
	}
	run() // warm the batch path (sent-slice sizing, response pooling)
	perOp := testing.AllocsPerRun(50, run) / depth
	if perOp > 0.25 {
		t.Errorf("batched remote submit allocates %.2f objects/op, want ≤ 0.25", perOp)
	}
}

// TestAllocCompiledProofCheck pins the compiled proof checker's warm path
// at zero allocations — the tentpole property that rules out text parsing
// and canonical-string comparison on authorization misses.
func TestAllocCompiledProofCheck(t *testing.T) {
	pf, goal, creds := fig5Proof("delegate", 12)
	env := &proof.Env{Credentials: creds}
	if _, err := proof.Check(pf, goal, env); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := proof.Check(pf, goal, env); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("compiled proof check allocates %.1f objects/op, want 0", allocs)
	}
}

// Allocation-regression pins for the dispatch hot paths. These are hard
// ceilings, not aspirations: a change that adds an allocation to a pinned
// path fails here before it shows up as a throughput regression in the
// Figure 4/Table 1 benchmarks.
package nexus

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/nal/proof"
	"repro/internal/tpm"
)

// allocKernel boots a kernel for allocation measurement.
func allocKernel(t *testing.T, opts kernel.Options) *kernel.Kernel {
	t.Helper()
	tp, err := tpm.Manufacture(1024)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(tp, disk.New(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestAllocSyscallBare pins the interposition-off, authorization-off
// syscall fast path (Table 1 "bare") at zero allocations per call.
func TestAllocSyscallBare(t *testing.T) {
	k := allocKernel(t, kernel.Options{NoInterposition: true, NoAuthorization: true})
	p, _ := k.CreateProcess(0, []byte("bench"))
	if err := p.Null(); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() { p.Null() }); allocs != 0 {
		t.Errorf("bare null syscall allocates %.1f objects/op, want 0", allocs)
	}
}

// TestAllocSyscallWarmAuthz pins the interposition-off syscall path with
// authorization on and the decision cache warm — the Figure 4 "system
// call" steady state — at zero allocations per call.
func TestAllocSyscallWarmAuthz(t *testing.T) {
	k := allocKernel(t, kernel.Options{NoInterposition: true})
	p, _ := k.CreateProcess(0, []byte("bench"))
	if err := p.Null(); err != nil { // warm the decision cache
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() { p.Null() }); allocs != 0 {
		t.Errorf("warm authorized null syscall allocates %.1f objects/op, want 0", allocs)
	}
}

// TestAllocMarshalMsg pins parameter marshaling — the per-call cost
// interpositioning imposes (§5.1) — at one allocation (the wire buffer).
func TestAllocMarshalMsg(t *testing.T) {
	m := &kernel.Msg{Op: "write", Obj: "file:/x", Args: [][]byte{make([]byte, 64)}}
	if allocs := testing.AllocsPerRun(200, func() { kernel.MarshalMsgForBench(m) }); allocs > 1 {
		t.Errorf("marshalMsg allocates %.1f objects/op, want ≤ 1", allocs)
	}
}

// TestAllocCompiledProofCheck pins the compiled proof checker's warm path
// at zero allocations — the tentpole property that rules out text parsing
// and canonical-string comparison on authorization misses.
func TestAllocCompiledProofCheck(t *testing.T) {
	pf, goal, creds := fig5Proof("delegate", 12)
	env := &proof.Env{Credentials: creds}
	if _, err := proof.Check(pf, goal, env); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := proof.Check(pf, goal, env); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("compiled proof check allocates %.1f objects/op, want 0", allocs)
	}
}

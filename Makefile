GO ?= go

.PHONY: check vet lint lint-fix-hints build test race bench-smoke bench-parallel fuzz-smoke api-check api-update leakcheck

# check is the CI gate: static analysis (vet + nexuslint), build, the full
# race suite, the API-stability gate, the transport goroutine-leak gate,
# and a short benchmark smoke so the parallel and batch benchmarks cannot
# bit-rot.
check: vet lint build race api-check leakcheck bench-smoke

# lint runs nexuslint, the repo-specific analyzer suite: the lock-order
# DAG (internal/analysis/lockorder.txt), the errno taxonomy on ABI error
# surfaces, //nexus:noalloc warm paths, and atomic/plain access mixing.
# See DESIGN.md "Static analysis (nexuslint)".
lint:
	$(GO) run ./cmd/nexuslint ./...

# lint-fix-hints reruns nexuslint verbosely: each finding carries the
# held-lock chain or noalloc call path that produced it.
lint-fix-hints:
	$(GO) run ./cmd/nexuslint -v ./...

# leakcheck pins the event-driven transport's goroutine footprint: 1024
# idle connections must cost O(worker-pool) goroutines, and a thousand
# dial/call/close cycles must return the process to its baseline count.
leakcheck:
	$(GO) test -race -run 'TestTransportGoroutineFootprint|TestLoopbackTransportStress' ./internal/kernel

# api-check regenerates the public-ABI listing (root package +
# internal/kernel) and fails when it drifts from the committed api.txt —
# the ABI changes deliberately, via `make api-update`, or not at all.
api-check:
	@$(GO) run ./cmd/apidump > .api.txt.gen; \
	if ! diff -u api.txt .api.txt.gen; then \
		rm -f .api.txt.gen; \
		echo "api-check: public ABI drifted; run 'make api-update' and commit api.txt" >&2; \
		exit 1; \
	fi; rm -f .api.txt.gen

# api-update rewrites the committed ABI listing after a deliberate change.
api-update:
	$(GO) run ./cmd/apidump > api.txt

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs every benchmark in the root package and the ledger once
# (-benchtime=1x) so bench code cannot rot; use bench-parallel (or go test
# -bench with a real benchtime) for measurements.
bench-smoke:
	$(GO) test -run=XXX -bench=. -benchtime=1x . ./internal/ledger

# bench-parallel measures multi-core scaling of the authorization fast
# path (compare the -cpu=1 and -cpu=4 lines).
bench-parallel:
	$(GO) test -run=XXX -bench=Parallel -cpu=1,4 .

# fuzz-smoke runs each fuzzer briefly; CI-friendly bound.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run=XXX -fuzz=FuzzParseFormula -fuzztime=$(FUZZTIME) ./internal/nal
	$(GO) test -run=XXX -fuzz=FuzzParsePrincipal -fuzztime=$(FUZZTIME) ./internal/nal
	$(GO) test -run=XXX -fuzz=FuzzMsgWire -fuzztime=$(FUZZTIME) ./internal/kernel
	$(GO) test -run=XXX -fuzz=FuzzBatchWire -fuzztime=$(FUZZTIME) ./internal/kernel
	$(GO) test -run=XXX -fuzz=FuzzRemoteSubmitFrame -fuzztime=$(FUZZTIME) ./internal/kernel
	$(GO) test -run=XXX -fuzz=FuzzHandleTable -fuzztime=$(FUZZTIME) ./internal/kernel
	$(GO) test -run=XXX -fuzz=FuzzParseProof -fuzztime=$(FUZZTIME) ./internal/nal/proof
	$(GO) test -run=XXX -fuzz=FuzzWireFormula -fuzztime=$(FUZZTIME) ./internal/nal
	$(GO) test -run=XXX -fuzz=FuzzWireCredential -fuzztime=$(FUZZTIME) ./internal/cert
	$(GO) test -run=XXX -fuzz=FuzzWALRecovery -fuzztime=$(FUZZTIME) ./internal/ledger

GO ?= go

.PHONY: check vet build test race bench-smoke bench-parallel fuzz-smoke

# check is the CI gate: static analysis, build, the full race suite, and a
# short benchmark smoke so the parallel benchmarks cannot bit-rot.
check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs every benchmark in the root package once (-benchtime=1x)
# so bench code cannot rot; use bench-parallel (or go test -bench with a real
# benchtime) for measurements.
bench-smoke:
	$(GO) test -run=XXX -bench=. -benchtime=1x .

# bench-parallel measures multi-core scaling of the authorization fast
# path (compare the -cpu=1 and -cpu=4 lines).
bench-parallel:
	$(GO) test -run=XXX -bench=Parallel -cpu=1,4 .

# fuzz-smoke runs each fuzzer briefly; CI-friendly bound.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run=XXX -fuzz=FuzzParseFormula -fuzztime=$(FUZZTIME) ./internal/nal
	$(GO) test -run=XXX -fuzz=FuzzParsePrincipal -fuzztime=$(FUZZTIME) ./internal/nal
	$(GO) test -run=XXX -fuzz=FuzzMsgWire -fuzztime=$(FUZZTIME) ./internal/kernel
	$(GO) test -run=XXX -fuzz=FuzzParseProof -fuzztime=$(FUZZTIME) ./internal/nal/proof

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - decision-cache subregion count: the configurable parameter trading
//     setgoal invalidation cost against collision rate (§2.8)
//   - guard proof-cache: structural re-checking avoided on repeat
//     evaluations (§2.9)
//   - parameter marshaling: the per-call price of interpositioning (§5.1)
//   - SSR Merkle tree: hashing cost vs region size (§3.3)
package nexus

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
	"repro/internal/ssr"
)

// BenchmarkAblation_DCacheRegions measures the setgoal invalidation path
// (clear one subregion) against lookup cost for varying subregion counts.
func BenchmarkAblation_DCacheRegions(b *testing.B) {
	for _, regions := range []int{1, 16, 64, 512} {
		c := kernel.NewDecisionCache(regions)
		// Populate with entries across many resources.
		for i := 0; i < 4096; i++ {
			c.Insert(fmt.Sprintf("subj%d", i%8), "read", fmt.Sprintf("obj%d", i), true)
		}
		b.Run(fmt.Sprintf("lookup/regions=%d", regions), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Lookup("subj1", "read", "obj17")
			}
		})
		b.Run(fmt.Sprintf("invalidate/regions=%d", regions), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Insert + invalidate measured together; insertion is the
				// cheaper half and common to every configuration.
				c.Insert("subj1", "read", "obj17", true)
				c.InvalidateRegion("read", "obj17")
			}
		})
	}
}

// BenchmarkAblation_GuardProofCache compares repeat guard evaluations with
// and without the §2.9 proof cache, on a proof large enough for the
// structural check to matter.
func BenchmarkAblation_GuardProofCache(b *testing.B) {
	for _, cached := range []bool{true, false} {
		name := "on"
		if !cached {
			name = "off"
		}
		b.Run("proofcache="+name, func(b *testing.B) {
			w := newFig4World(b, false) // kernel decision cache off
			if !cached {
				w.g.SetCacheSize(0)
			}
			pf, goal, creds := fig5Proof("delegate", 16)
			srv := w.port.Owner
			w.k.SetGoal(srv, "read", "obj", goal, nil)
			var kcreds []kernel.Credential
			for _, c := range creds {
				kcreds = append(kcreds, kernel.Credential{Inline: c})
			}
			w.k.SetProof(w.cli, "read", "obj", pf, kcreds)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.call(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Marshal isolates the parameter-marshaling cost that
// interpositioning imposes on every call.
func BenchmarkAblation_Marshal(b *testing.B) {
	for _, size := range []int{0, 64, 1024} {
		m := &kernel.Msg{Op: "write", Obj: "file:/x", Args: [][]byte{make([]byte, size)}}
		b.Run(fmt.Sprintf("args=%dB", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wire := kernel.MarshalMsgForBench(m)
				if _, err := kernel.DecodeWire(wire); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_MerkleRegion measures whole-region verification cost
// (the Figure 8 hash column's per-byte component) across region sizes.
func BenchmarkAblation_MerkleRegion(b *testing.B) {
	for _, blocks := range []int{1, 16, 128, 1024} {
		data := make([][]byte, blocks)
		for i := range data {
			data[i] = make([]byte, ssr.BlockSize)
		}
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			b.SetBytes(int64(blocks * ssr.BlockSize))
			for i := 0; i < b.N; i++ {
				ssr.MerkleRoot(data)
			}
		})
	}
}

// BenchmarkAblation_ProofTextRoundTrip measures the externalized proof
// format, the cost of shipping proofs between machines as text.
func BenchmarkAblation_ProofTextRoundTrip(b *testing.B) {
	pf, goal, creds := fig5Proof("delegate", 12)
	text := pf.String()
	env := &proof.Env{Credentials: creds}
	b.Run("parse+check", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := proof.Parse(text)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := proof.Check(p, goal, env); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_Derive measures client-side proof construction, which
// the architecture deliberately keeps off the guard's critical path.
func BenchmarkAblation_Derive(b *testing.B) {
	for _, n := range []int{1, 4, 8} {
		_, goal, creds := fig5Proof("delegate", n)
		d := &proof.Deriver{Creds: creds, MaxDepth: n + 4}
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.Derive(goal); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_SayVsParse separates the say syscall's parse cost from
// labelstore insertion.
func BenchmarkAblation_SayVsParse(b *testing.B) {
	k := benchKernel(b, kernel.Options{})
	p, _ := k.CreateProcess(0, []byte("bench"))
	stmt := "isTypeSafe(hash:ab12) and vetted(alice)"
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nal.Parse(stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
	f := nal.MustParse(stmt)
	b.Run("say-preparsed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Labels.SayFormula(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("say-full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Labels.Say(stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_ProofPipeline isolates the compiled-pipeline stages on
// a 12-rule delegation proof, the scoreboard for the hash-consed DAG work:
//
//	text/warm       repeat text arrives: parse-cache hit + compiled check
//	text/novel      unseen text, known structure: full parse + compile
//	check/memo      compiled check, subproof memo warm
//	check/nomemo    compiled check, memo disabled (pure ID-equality walk)
//	check/text      the structural reference checker (the seed's path)
//	compile         Compile alone on a parsed proof
func BenchmarkAblation_ProofPipeline(b *testing.B) {
	pf, goal, creds := fig5Proof("delegate", 12)
	text := pf.String()
	env := &proof.Env{Credentials: creds}

	b.Run("text/warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := proof.Parse(text)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := proof.Check(p, goal, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("text/novel", func(b *testing.B) {
		// A unique trailing spacer line defeats the parse cache without
		// changing the proof, so every iteration pays lex + compile (against
		// an already-populated cons table: the "known structure" miss).
		texts := make([]string, b.N)
		for i := range texts {
			texts[i] = text + strings.Repeat(" ", i%256) + "\n" + fmt.Sprint(i) + ". true-i : true"
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := proof.Parse(texts[i])
			if err != nil {
				b.Fatal(err)
			}
			if _, err := proof.Check(p, p.Conclusion(), env); err != nil {
				b.Fatal(err)
			}
		}
	})
	c, err := pf.Compiled()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("check/memo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Check(goal, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("check/nomemo", func(b *testing.B) {
		proof.SetMemoEnabled(false)
		defer proof.SetMemoEnabled(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Check(goal, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("check/text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := proof.CheckStructural(pf, goal, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := proof.Compile(pf); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Subproof-heavy shape — the memo's target: one imp-i step carrying a
	// 64-step hypothetical frame. A memo hit skips the whole frame.
	hyp := nal.MustParse("a")
	sub := []proof.Step{{Rule: proof.RuleTrueI, F: nal.TrueF{}}}
	cur := nal.Formula(nal.And{L: hyp, R: nal.TrueF{}})
	sub = append(sub, proof.Step{Rule: proof.RuleAndI, Premises: []int{-1, 0}, F: cur})
	for i := 0; i < 62; i++ {
		cur = nal.And{L: hyp, R: cur}
		sub = append(sub, proof.Step{Rule: proof.RuleAndI, Premises: []int{-1, len(sub) - 1}, F: cur})
	}
	sgoal := nal.Formula(nal.Implies{L: hyp, R: cur})
	spf := &proof.Proof{Steps: []proof.Step{{
		Rule: proof.RuleImpI, F: sgoal,
		Sub: []proof.Subproof{{Hyp: hyp, Steps: sub}},
	}}}
	sc, err := spf.Compiled()
	if err != nil {
		b.Fatal(err)
	}
	senv := &proof.Env{}
	b.Run("subframe/memo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sc.Check(sgoal, senv); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("subframe/nomemo", func(b *testing.B) {
		proof.SetMemoEnabled(false)
		defer proof.SetMemoEnabled(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sc.Check(sgoal, senv); err != nil {
				b.Fatal(err)
			}
		}
	})
}

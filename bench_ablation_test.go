// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - decision-cache subregion count: the configurable parameter trading
//     setgoal invalidation cost against collision rate (§2.8)
//   - guard proof-cache: structural re-checking avoided on repeat
//     evaluations (§2.9)
//   - parameter marshaling: the per-call price of interpositioning (§5.1)
//   - SSR Merkle tree: hashing cost vs region size (§3.3)
package nexus

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
	"repro/internal/ssr"
)

// BenchmarkAblation_DCacheRegions measures the setgoal invalidation path
// (clear one subregion) against lookup cost for varying subregion counts.
func BenchmarkAblation_DCacheRegions(b *testing.B) {
	for _, regions := range []int{1, 16, 64, 512} {
		c := kernel.NewDecisionCache(regions)
		// Populate with entries across many resources.
		for i := 0; i < 4096; i++ {
			c.Insert(fmt.Sprintf("subj%d", i%8), "read", fmt.Sprintf("obj%d", i), true)
		}
		b.Run(fmt.Sprintf("lookup/regions=%d", regions), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Lookup("subj1", "read", "obj17")
			}
		})
		b.Run(fmt.Sprintf("invalidate/regions=%d", regions), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Insert + invalidate measured together; insertion is the
				// cheaper half and common to every configuration.
				c.Insert("subj1", "read", "obj17", true)
				c.InvalidateRegion("read", "obj17")
			}
		})
	}
}

// BenchmarkAblation_GuardProofCache compares repeat guard evaluations with
// and without the §2.9 proof cache, on a proof large enough for the
// structural check to matter.
func BenchmarkAblation_GuardProofCache(b *testing.B) {
	for _, cached := range []bool{true, false} {
		name := "on"
		if !cached {
			name = "off"
		}
		b.Run("proofcache="+name, func(b *testing.B) {
			w := newFig4World(b, false) // kernel decision cache off
			if !cached {
				w.g.SetCacheSize(0)
			}
			pf, goal, creds := fig5Proof("delegate", 16)
			srv := w.port.Owner
			w.k.SetGoal(srv, "read", "obj", goal, nil)
			var kcreds []kernel.Credential
			for _, c := range creds {
				kcreds = append(kcreds, kernel.Credential{Inline: c})
			}
			w.k.SetProof(w.cli, "read", "obj", pf, kcreds)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.call(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Marshal isolates the parameter-marshaling cost that
// interpositioning imposes on every call.
func BenchmarkAblation_Marshal(b *testing.B) {
	for _, size := range []int{0, 64, 1024} {
		m := &kernel.Msg{Op: "write", Obj: "file:/x", Args: [][]byte{make([]byte, size)}}
		b.Run(fmt.Sprintf("args=%dB", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wire := kernel.MarshalMsgForBench(m)
				if _, err := kernel.DecodeWire(wire); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_MerkleRegion measures whole-region verification cost
// (the Figure 8 hash column's per-byte component) across region sizes.
func BenchmarkAblation_MerkleRegion(b *testing.B) {
	for _, blocks := range []int{1, 16, 128, 1024} {
		data := make([][]byte, blocks)
		for i := range data {
			data[i] = make([]byte, ssr.BlockSize)
		}
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			b.SetBytes(int64(blocks * ssr.BlockSize))
			for i := 0; i < b.N; i++ {
				ssr.MerkleRoot(data)
			}
		})
	}
}

// BenchmarkAblation_ProofTextRoundTrip measures the externalized proof
// format, the cost of shipping proofs between machines as text.
func BenchmarkAblation_ProofTextRoundTrip(b *testing.B) {
	pf, goal, creds := fig5Proof("delegate", 12)
	text := pf.String()
	env := &proof.Env{Credentials: creds}
	b.Run("parse+check", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := proof.Parse(text)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := proof.Check(p, goal, env); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_Derive measures client-side proof construction, which
// the architecture deliberately keeps off the guard's critical path.
func BenchmarkAblation_Derive(b *testing.B) {
	for _, n := range []int{1, 4, 8} {
		_, goal, creds := fig5Proof("delegate", n)
		d := &proof.Deriver{Creds: creds, MaxDepth: n + 4}
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.Derive(goal); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_SayVsParse separates the say syscall's parse cost from
// labelstore insertion.
func BenchmarkAblation_SayVsParse(b *testing.B) {
	k := benchKernel(b, kernel.Options{})
	p, _ := k.CreateProcess(0, []byte("bench"))
	stmt := "isTypeSafe(hash:ab12) and vetted(alice)"
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nal.Parse(stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
	f := nal.MustParse(stmt)
	b.Run("say-preparsed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Labels.SayFormula(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("say-full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Labels.Say(stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Multi-core scaling benchmarks for the authorization fast path. The
// paper's caches (§2.8–§2.9) exist to take authorization off the hot path;
// these benchmarks show the sharded implementations actually scale with
// cores. Run with -cpu=1,4 to observe the parallel speedup, e.g.
//
//	go test -run=XXX -bench=Parallel -cpu=1,4 .
package nexus

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/guard"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
)

// BenchmarkParallelGuard hammers one guard.Generic with a warm proof cache
// from GOMAXPROCS goroutines, spread over many distinct (goal, proof)
// combinations the way many clients would be. Every check re-instantiates
// the goal, derives the canonical cache key, and hits a proof-cache shard.
func BenchmarkParallelGuard(b *testing.B) {
	k := benchKernel(b, kernel.Options{})
	g := guard.New(k)
	k.SetGuard(g)
	cli, err := k.CreateProcess(0, []byte("client"))
	if err != nil {
		b.Fatal(err)
	}

	goal := nal.MustParse("?S says wantsAccess(?O)")
	const objs = 64
	reqs := make([]*kernel.GuardRequest, objs)
	for i := range reqs {
		obj := fmt.Sprintf("obj%d", i)
		cred := nal.Says{P: cli.Prin, F: nal.Pred{
			Name: "wantsAccess", Args: []nal.Term{nal.Str(obj)},
		}}
		reqs[i] = &kernel.GuardRequest{
			Kernel:  k,
			Subject: cli.Prin,
			Op:      "read",
			Obj:     obj,
			Goal:    goal,
			Proof:   proof.Assume(0, cred),
			Creds:   []kernel.Credential{{Inline: cred}},
		}
	}
	for _, r := range reqs {
		if d := g.Check(r); !d.Allow {
			b.Fatalf("warmup denied: %s", d.Reason)
		}
	}
	if hits, _, _ := g.Stats(); hits != 0 {
		// Each distinct request was inserted exactly once during warmup.
		b.Fatalf("warmup unexpectedly hit the cache")
	}

	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)) * 17 // start each goroutine on a different object
		for pb.Next() {
			if d := g.Check(reqs[i%objs]); !d.Allow {
				b.Errorf("denied: %s", d.Reason)
				return
			}
			i++
		}
	})
}

// BenchmarkParallelSyscall is the end-to-end multi-core proof for the
// dispatch pipeline: GOMAXPROCS goroutines, each its own process, issuing
// null system calls with authorization on and the decision cache warm. With
// no kernel-global lock on the path, the -cpu=4 line should approach the
// -cpu=1 line's per-op cost (on multi-core hardware) instead of convoying.
func BenchmarkParallelSyscall(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts kernel.Options
	}{
		{"standard", kernel.Options{}},
		{"bare", kernel.Options{NoInterposition: true, NoAuthorization: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			k := benchKernel(b, cfg.opts)
			const nprocs = 16
			procs := make([]*kernel.Process, nprocs)
			for i := range procs {
				p, err := k.CreateProcess(0, []byte(fmt.Sprintf("bench%d", i)))
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Null(); err != nil { // warm the decision cache
					b.Fatal(err)
				}
				procs[i] = p
			}
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				p := procs[int(next.Add(1))%nprocs]
				for pb.Next() {
					if err := p.Null(); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkParallelIPC drives the same pipeline through Kernel.Call: many
// client processes against one server port, decision cache warm, channel
// enforcement on so the capability check is also on the measured path.
func BenchmarkParallelIPC(b *testing.B) {
	k := benchKernel(b, kernel.Options{})
	k.EnforceChannels(true)
	srv, err := k.CreateProcess(0, []byte("srv"))
	if err != nil {
		b.Fatal(err)
	}
	pt, err := k.CreatePort(srv, func(kernel.Caller, *kernel.Msg) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil {
		b.Fatal(err)
	}

	const nprocs = 16
	const objs = 64
	procs := make([]*kernel.Process, nprocs)
	for i := range procs {
		p, err := k.CreateProcess(0, []byte(fmt.Sprintf("cli%d", i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := k.GrantChannel(p, pt.ID); err != nil {
			b.Fatal(err)
		}
		procs[i] = p
	}
	msgs := make([]*kernel.Msg, objs)
	for i := range msgs {
		msgs[i] = &kernel.Msg{Op: "read", Obj: fmt.Sprintf("obj%d", i)}
	}
	for _, p := range procs { // warm every (subject, op, obj) decision
		for _, m := range msgs {
			if _, err := k.Call(p, pt.ID, m); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		id := int(next.Add(1))
		p := procs[id%nprocs]
		i := id * 17
		for pb.Next() {
			if _, err := k.Call(p, pt.ID, msgs[i%objs]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkParallelDCache measures raw decision-cache throughput: a warm
// cache probed from GOMAXPROCS goroutines with an occasional insert, the
// kernel's per-syscall fast path.
func BenchmarkParallelDCache(b *testing.B) {
	c := kernel.NewDecisionCache(64)
	const objs = 128
	subj := "key:fp.boot.ipd.1"
	obj := func(i int) string { return fmt.Sprintf("obj%d", i%objs) }
	for i := 0; i < objs; i++ {
		c.Insert(subj, "read", obj(i), true)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)) * 31
		for pb.Next() {
			if i%64 == 0 {
				c.Insert(subj, "read", obj(i), true)
			} else if allow, ok := c.Lookup(subj, "read", obj(i)); !ok || !allow {
				b.Error("warm lookup missed")
				return
			}
			i++
		}
	})
}

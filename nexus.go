// Package nexus is the public API of the logical-attestation library: a Go
// reproduction of "Logical Attestation: An Authorization Architecture for
// Trustworthy Computing" (Sirer et al., SOSP 2011).
//
// The package re-exports the stable surface of the internal subsystems:
//
//   - NAL formulas and proofs (ParseFormula, Derive, CheckProof)
//   - the simulated platform (NewTPM, NewDisk, Boot)
//   - the typed user↔kernel ABI: Session, capability handles (Cap), batched
//     submission (Session.Submit), and the errno-style Error taxonomy
//   - the generic guard (NewGuard)
//   - attested storage (InitStorage, RecoverStorage, regions, VKEYs)
//
// A minimal end-to-end flow:
//
//	t, _ := nexus.NewTPM(0)
//	k, _ := nexus.Boot(t, nexus.NewDisk(), nexus.Options{})
//	k.SetGuard(nexus.NewGuard(k))
//	alice, _ := k.NewSession([]byte("alice-app"))
//	label, _ := alice.Say("wantsAccess")
//	... alice.SetGoal / alice.SetProof / alice.Call(cap, msg) ...
//
// User-level code holds Sessions and Caps only; *Process and *Port stay
// behind the kernel package boundary, which models the privilege boundary.
// See examples/ for complete programs and DESIGN.md for the system map.
package nexus

import (
	"repro/internal/cachestat"
	"repro/internal/cert"
	"repro/internal/disk"
	"repro/internal/guard"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
	"repro/internal/ssr"
	"repro/internal/tpm"
)

// Core platform types.
type (
	// TPM is the simulated secure coprocessor.
	TPM = tpm.TPM
	// Disk is the simulated secondary storage device.
	Disk = disk.Disk
	// Kernel is a running Nexus instance.
	Kernel = kernel.Kernel
	// Process is an isolated protection domain. Platform-level code
	// (benchmarks, ablation drivers) may hold one; user-level code works
	// through Session instead and never touches a *Process.
	Process = kernel.Process
	// Options configures Boot.
	Options = kernel.Options
	// Msg is an IPC request.
	Msg = kernel.Msg
	// Port is an IPC endpoint (platform-level; the ABI names ports by
	// integer id and capability handle, never by pointer).
	Port = kernel.Port
	// Label is an attributable statement in a labelstore.
	Label = kernel.Label
	// Credential accompanies a proof (inline or labelstore reference).
	Credential = kernel.Credential
	// Authority answers live queries about dynamic state.
	Authority = kernel.Authority
	// Guard decides authorization requests.
	Guard = guard.Generic
	// CacheStats is the hit/miss/eviction snapshot shared by the guard
	// proof cache and the kernel decision cache.
	CacheStats = cachestat.Stats
)

// ABI types: the typed Session surface user-level code programs against.
// A Session pairs a process with its capability handle table; Caps are the
// only names user code holds for kernel objects, and the errno-style Error
// taxonomy replaces string matching on failures.
type (
	// Session is a process's typed handle on the kernel ABI.
	Session = kernel.Session
	// Cap is an opaque per-process capability handle.
	Cap = kernel.Cap
	// Caller identifies the peer process in handlers and monitors.
	Caller = kernel.Caller
	// Sub is one submission-queue entry for Session.Submit.
	Sub = kernel.Sub
	// Completion is the result of one submitted operation.
	Completion = kernel.Completion
	// SubQueue is a reusable submission/completion queue.
	SubQueue = kernel.SubQueue
	// Error is the structured ABI error (errno class + operation + detail).
	Error = kernel.Error
	// Errno is the ABI error class.
	Errno = kernel.Errno
)

// Errno classes of the ABI error taxonomy.
const (
	EINVAL     = kernel.EINVAL
	ESRCH      = kernel.ESRCH
	ENOENT     = kernel.ENOENT
	EBADF      = kernel.EBADF
	EACCES     = kernel.EACCES
	ENOGUARD   = kernel.ENOGUARD
	EINTEGRITY = kernel.EINTEGRITY
	ENOLABEL   = kernel.ENOLABEL
	ENOAUTH    = kernel.ENOAUTH
	ECANCELED  = kernel.ECANCELED
)

// CapSyscall is the pseudo-handle for the kernel system-call channel.
const CapSyscall = kernel.CapSyscall

// Sentinel errors of the ABI; typed *Error values unwrap to these, so both
// errors.Is and ErrnoOf work on anything the kernel returns.
var (
	ErrDenied        = kernel.ErrDenied
	ErrNoSuchPort    = kernel.ErrNoSuchPort
	ErrNoSuchProcess = kernel.ErrNoSuchProcess
	ErrBadArgument   = kernel.ErrBadArgument
	ErrBadHandle     = kernel.ErrBadHandle
	ErrNoGuard       = kernel.ErrNoGuard
	ErrCanceled      = kernel.ErrCanceled
)

// ErrnoOf extracts the errno class from any error crossing the ABI.
func ErrnoOf(err error) Errno { return kernel.ErrnoOf(err) }

// Dispatch-pipeline types. Every kernel entry — user IPC and kernel system
// calls alike — runs the same pipeline (resolve → channel check → authorize
// → interpose/marshal → invoke → unwind); these are the types reference
// monitors and guards plug into it with.
type (
	// Handler implements the server side of a port.
	Handler = kernel.Handler
	// Interposer is a reference monitor bound to an IPC channel.
	Interposer = kernel.Interposer
	// FuncMonitor adapts plain functions to the Interposer interface.
	FuncMonitor = kernel.FuncMonitor
	// Verdict is a reference monitor's decision on an intercepted call.
	Verdict = kernel.Verdict
	// GuardRequest carries everything a guard needs for one decision.
	GuardRequest = kernel.GuardRequest
	// GuardDecision is a guard's answer, including cacheability.
	GuardDecision = kernel.GuardDecision
	// LabelRef names a label held in some process's labelstore.
	LabelRef = kernel.LabelRef
)

// Reference-monitor verdicts.
const (
	VerdictAllow = kernel.VerdictAllow
	VerdictBlock = kernel.VerdictBlock
)

// Logic types.
type (
	// Formula is a NAL formula.
	Formula = nal.Formula
	// Principal is a NAL principal.
	Principal = nal.Principal
	// FormulaID is a stable hash-cons handle: two formulas are equal
	// exactly when their IDs are equal.
	FormulaID = nal.FormulaID
	// Proof is an explicit NAL derivation.
	Proof = proof.Proof
	// CompiledProof is a proof lowered to hash-consed formula IDs; checking
	// it performs no parsing and no structural comparison.
	CompiledProof = proof.Compiled
	// Deriver constructs proofs heuristically on the client side.
	Deriver = proof.Deriver
	// ProofEnv supplies credentials and authorities to the checker.
	ProofEnv = proof.Env
	// Certificate is an externalized, signed credential (§2.4).
	Certificate = cert.Certificate
	// CertVerifyCache pre-verifies certificates by fingerprint and carries
	// revocation; each kernel owns one (Kernel.CertCache).
	CertVerifyCache = cert.VerifyCache
)

// Distributed attestation plane: the wire codec, inter-kernel transport,
// and remote credential exchange. A Node attaches a kernel to a transport;
// a verified Peer exposes remote services that Sessions address through
// capability handles, with externalized labels crossing as TPM-rooted
// certificates.
type (
	// Node is a kernel's endpoint on the attestation plane.
	Node = kernel.Node
	// Peer is a verified connection to a remote node.
	Peer = kernel.Peer
	// Transport is a connection factory (loopback or TCP).
	Transport = kernel.Transport
	// Conn is a reliable, ordered, framed byte pipe between nodes.
	Conn = kernel.Conn
	// Listener accepts inbound transport connections.
	Listener = kernel.Listener
	// LoopbackTransport is the in-memory transport backend.
	LoopbackTransport = kernel.LoopbackTransport
	// TCPTransport is the TCP transport backend.
	TCPTransport = kernel.TCPTransport
	// TransportConfig sizes a node's event-driven transport runtime.
	TransportConfig = kernel.TransportConfig
	// RemoteCred is one credential in a remote proof registration.
	RemoteCred = kernel.RemoteCred
	// RemoteLabel names a label deposited in a proxy labelstore on a peer.
	RemoteLabel = kernel.RemoteLabel
	// ExternalLabel is a label externalized to certificate form (§2.4).
	ExternalLabel = kernel.ExternalLabel
	// WireEncoder is the egress half of a connection's formula remap state.
	WireEncoder = nal.WireEncoder
	// WireDecoder is the ingress half: warm decode is an intern lookup.
	WireDecoder = nal.WireDecoder
	// AuditLog is the kernel's hash-chained record of guard verdicts.
	AuditLog = kernel.AuditLog
	// AuditRecord is one authorization decision in the audit log.
	AuditRecord = kernel.AuditRecord
)

// NewNode attaches a transport endpoint to a kernel.
func NewNode(k *Kernel) *Node { return kernel.NewNode(k) }

// NewNodeWithConfig attaches a transport endpoint with an explicit runtime
// configuration; zero fields select their defaults.
func NewNodeWithConfig(k *Kernel, cfg TransportConfig) *Node {
	return kernel.NewNodeWithConfig(k, cfg)
}

// NewLoopbackTransport creates an in-memory transport.
func NewLoopbackTransport() *LoopbackTransport { return kernel.NewLoopbackTransport() }

// VerifyAuditChain checks an audit record sequence against the retained
// window's base seq and its base and head hashes.
func VerifyAuditChain(recs []AuditRecord, baseSeq uint64, base, head [32]byte) error {
	return kernel.VerifyAuditChain(recs, baseSeq, base, head)
}

// Storage types.
type (
	// Storage is the VDIR manager multiplexing the TPM's DIRs.
	Storage = ssr.Manager
	// Region is a secure storage region.
	Region = ssr.Region
	// KeyStore manages VKEYs.
	KeyStore = ssr.KeyStore
)

// NewTPM manufactures a simulated TPM; keyBits of 0 selects the default.
func NewTPM(keyBits int) (*TPM, error) { return tpm.Manufacture(keyBits) }

// NewDisk creates an empty simulated disk.
func NewDisk() *Disk { return disk.New() }

// Boot runs the measured Nexus boot sequence.
func Boot(t *TPM, d *Disk, opts Options) (*Kernel, error) { return kernel.Boot(t, d, opts) }

// NewGuard creates the generic guard for a kernel.
func NewGuard(k *Kernel) *Guard { return guard.New(k) }

// ParseFormula parses NAL concrete syntax.
func ParseFormula(src string) (Formula, error) { return nal.Parse(src) }

// MustFormula is ParseFormula that panics on error, for literals.
func MustFormula(src string) Formula { return nal.MustParse(src) }

// ParsePrincipal parses a principal expression.
func ParsePrincipal(src string) (Principal, error) { return nal.ParsePrincipal(src) }

// FormulaKey returns the interned canonical key of a formula — identical
// text to f.String(), memoized so repeated calls for structurally equal
// formulas do not re-serialize the AST. Structurally equal formulas always
// share one key (Time terms render in UTC, so equality and printing
// agree). Use it when keying maps on formulas.
func FormulaKey(f Formula) string { return nal.KeyOf(f) }

// CheckProof validates a proof against a goal. The proof is compiled to
// hash-consed formula IDs on first check (and cached on the Proof), so
// repeated checks compare integers, not ASTs.
func CheckProof(p *Proof, goal Formula, env *ProofEnv) (proof.Result, error) {
	return proof.Check(p, goal, env)
}

// CompileProof lowers a proof to its compiled representation explicitly
// (CheckProof does this lazily).
func CompileProof(p *Proof) (*CompiledProof, error) { return proof.Compile(p) }

// FormulaIDOf interns a formula in the process-wide hash-cons DAG and
// returns its stable handle; ok is false only when the (capped) table is
// saturated. Equal formulas always receive equal IDs.
func FormulaIDOf(f Formula) (FormulaID, bool) { return nal.IDOf(f) }

// ParseProof reads the textual proof exchange format. Byte-identical proof
// text is memoized: re-parsing returns the same immutable *Proof with its
// compiled form and fingerprint already warm.
func ParseProof(src string) (*Proof, error) { return proof.Parse(src) }

// InitStorage initializes attested storage on first boot.
func InitStorage(t *TPM, d *Disk) (*Storage, error) { return ssr.Init(t, d) }

// RecoverStorage recovers attested storage after a reboot, detecting
// tampering and replay.
func RecoverStorage(t *TPM, d *Disk) (*Storage, error) { return ssr.Recover(t, d) }

// NewKeyStore creates a VKEY store.
func NewKeyStore() *KeyStore { return ssr.NewKeyStore() }

// Command apidump renders the public ABI surface — every exported
// declaration of the root nexus package and of internal/kernel (the
// packages user-level code programs against) — as one sorted, normalized
// line per declaration.
//
// `make check` regenerates the listing and diffs it against the committed
// api.txt, so any change to the public ABI shows up as an explicit diff in
// review: future PRs change the surface deliberately, never by accident.
//
// Regenerate with:
//
//	go run ./cmd/apidump > api.txt
package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

// packages whose exported surface constitutes the ABI.
var packages = []string{".", "./internal/kernel"}

func main() {
	var lines []string
	for _, dir := range packages {
		ls, err := dump(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apidump: %s: %v\n", dir, err)
			os.Exit(1)
		}
		lines = append(lines, ls...)
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}

// dump renders the exported declarations of the package in dir.
func dump(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	for name, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedRecv(d) {
						continue
					}
					cp := *d
					cp.Body = nil // signature only
					cp.Doc = nil
					lines = append(lines, render(fset, name, &cp))
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						if !specExported(spec) {
							continue
						}
						one := &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{stripDoc(spec)}}
						lines = append(lines, render(fset, name, one))
					}
				}
			}
		}
	}
	return lines, nil
}

// exportedRecv reports whether a method's receiver base type is exported
// (top-level functions trivially qualify).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// specExported reports whether a const/var/type spec declares any exported
// name.
func specExported(spec ast.Spec) bool {
	switch s := spec.(type) {
	case *ast.TypeSpec:
		return s.Name.IsExported()
	case *ast.ValueSpec:
		for _, n := range s.Names {
			if n.IsExported() {
				return true
			}
		}
	}
	return false
}

// stripDoc removes comments from a spec copy so the rendering is stable
// under doc edits.
func stripDoc(spec ast.Spec) ast.Spec {
	switch s := spec.(type) {
	case *ast.TypeSpec:
		cp := *s
		cp.Doc, cp.Comment = nil, nil
		return &cp
	case *ast.ValueSpec:
		cp := *s
		cp.Doc, cp.Comment = nil, nil
		return &cp
	}
	return spec
}

// render prints a declaration as "pkg: one-line declaration".
func render(fset *token.FileSet, pkg string, node any) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, node)
	// Normalize to one line: collapse all whitespace runs.
	return pkg + ": " + strings.Join(strings.Fields(buf.String()), " ")
}

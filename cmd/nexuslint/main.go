// Command nexuslint runs the repo-specific static-analysis suite
// (internal/analysis) over the module: lockorder, errnolint, noalloc and
// atomiclint. It prints findings as `file:line: [analyzer] message` and
// exits non-zero if there are any. With -v each finding also prints its
// explanation chain (the held-lock path for lockorder, the call path for
// noalloc), which is what `make lint-fix-hints` uses so violations are
// debuggable from CI logs alone.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	verbose := flag.Bool("v", false, "print the explanation chain for each finding")
	run := flag.String("run", "", "comma-separated analyzer subset (default: all)")
	lockspec := flag.String("lockspec", "", "lock DAG spec path (default: <module>/internal/analysis/lockorder.txt)")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	specPath := *lockspec
	if specPath == "" {
		specPath = filepath.Join(root, "internal", "analysis", "lockorder.txt")
	}
	spec, err := analysis.ParseLockSpec(specPath)
	if err != nil {
		fatal(fmt.Errorf("lock spec: %w", err))
	}

	prog, err := analysis.LoadPackages(root, patterns...)
	if err != nil {
		fatal(err)
	}

	all := []analysis.Analyzer{
		analysis.Lockorder{Spec: spec},
		analysis.Errnolint{},
		analysis.Noalloc{},
		analysis.Atomiclint{},
	}
	var selected []analysis.Analyzer
	if *run == "" {
		selected = all
	} else {
		want := map[string]bool{}
		for _, n := range strings.Split(*run, ",") {
			want[strings.TrimSpace(n)] = true
		}
		for _, a := range all {
			if want[a.Name()] {
				selected = append(selected, a)
				delete(want, a.Name())
			}
		}
		for n := range want {
			fatal(fmt.Errorf("unknown analyzer %q", n))
		}
	}

	findings := analysis.RunAll(prog, selected)
	for _, f := range findings {
		fmt.Println(rel(root, f.String()))
		if *verbose && f.Chain != "" {
			fmt.Println("\t" + f.Chain)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "nexuslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// rel shortens absolute paths in a finding line to module-relative ones.
func rel(root, line string) string {
	return strings.ReplaceAll(line, root+string(filepath.Separator), "")
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		return "", fmt.Errorf("not inside a module: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nexuslint:", err)
	os.Exit(2)
}

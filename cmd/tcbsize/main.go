// Command tcbsize reports lines of code per component, the Table 2
// analogue. It distinguishes the trusted computing base (logic, proof
// checker, kernel, TPM, guard, attested storage) from optional components
// (applications, examples, benchmarks), mirroring the paper's breakdown.
//
// Usage:
//
//	tcbsize [root]
package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// tcb lists the components that constitute the trusted computing base; the
// rest are optional, as in Table 2's dagger annotations.
var tcb = map[string]bool{
	"internal/nal":        true,
	"internal/nal/proof":  true,
	"internal/tpm":        true,
	"internal/cert":       true,
	"internal/kernel":     true,
	"internal/guard":      true,
	"internal/ssr":        true,
	"internal/disk":       true,
	"internal/introspect": true,
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	code := map[string]int{}
	tests := map[string]int{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if name == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, _ := filepath.Rel(root, path)
		component := filepath.ToSlash(filepath.Dir(rel))
		if component == "." {
			component = "root"
		}
		n, err := countLines(path)
		if err != nil {
			return err
		}
		if strings.HasSuffix(path, "_test.go") {
			tests[component] += n
		} else {
			code[component] += n
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var names []string
	for n := range code {
		names = append(names, n)
	}
	for n := range tests {
		if _, ok := code[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	fmt.Printf("%-34s %8s %8s %6s\n", "component", "code", "tests", "TCB")
	var tcbTotal, optTotal, testTotal int
	for _, n := range names {
		mark := "†" // optional
		if tcb[n] {
			mark = "tcb"
			tcbTotal += code[n]
		} else {
			optTotal += code[n]
		}
		testTotal += tests[n]
		fmt.Printf("%-34s %8d %8d %6s\n", n, code[n], tests[n], mark)
	}
	fmt.Printf("%-34s %8d\n", "TCB total", tcbTotal)
	fmt.Printf("%-34s %8d\n", "optional (†) total", optTotal)
	fmt.Printf("%-34s %8d\n", "test total", testTotal)
}

func countLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlock {
			if strings.Contains(line, "*/") {
				inBlock = false
			}
			continue
		}
		switch {
		case line == "", strings.HasPrefix(line, "//"):
		case strings.HasPrefix(line, "/*"):
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
		default:
			n++
		}
	}
	return n, sc.Err()
}

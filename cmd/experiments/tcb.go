package main

import (
	"bufio"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// tcbCounts counts non-blank, non-comment Go lines per component directory
// under root, the Table 2 analogue (the paper used David Wheeler's
// sloccount).
func tcbCounts(root string) (map[string]int, []string, error) {
	counts := map[string]int{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		component := filepath.Dir(rel)
		if component == "." {
			component = filepath.Base(path)
		}
		if strings.HasSuffix(path, "_test.go") {
			component += " (tests)"
		}
		n, err := countLines(path)
		if err != nil {
			return err
		}
		counts[component] += n
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	order := make([]string, 0, len(counts))
	for name := range counts {
		order = append(order, name)
	}
	sort.Strings(order)
	return counts, order, nil
}

func countLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlock {
			if strings.Contains(line, "*/") {
				inBlock = false
			}
			continue
		}
		switch {
		case line == "", strings.HasPrefix(line, "//"):
		case strings.HasPrefix(line, "/*"):
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
		default:
			n++
		}
	}
	return n, sc.Err()
}

// Command experiments regenerates every table and figure of the paper's
// evaluation section (§5) on the simulated platform, printing rows in the
// paper's format. Absolute numbers are wall-clock nanoseconds on the
// simulation rather than cycles on the authors' 2006 testbed; the shapes
// (ratios, cache effects, crossovers) are the reproduction target.
//
// Usage:
//
//	experiments -exp table1|table2|fig4|fig5|fig6|fig7|fig8|scale|proof|abi|net|ledger|all [-quick]
//
// -exp proof additionally writes BENCH_proof.json (ns/op and allocs/op for
// the authorization miss path, memo-hit path, and compiled vs. text
// proofs), the recorded perf trajectory of the proof pipeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/disk"
	"repro/internal/fauxbook"
	"repro/internal/fsys"
	"repro/internal/guard"
	"repro/internal/kernel"
	"repro/internal/monolith"
	"repro/internal/nal"
	"repro/internal/nal/proof"
	"repro/internal/netdev"
	"repro/internal/ssr"
	"repro/internal/tpm"
)

var quick = flag.Bool("quick", false, "fewer iterations for a fast pass")

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1, table2, fig4, fig5, fig6, fig7, fig8, scale, proof, abi, net, ledger, all)")
	flag.Parse()
	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	run("table1", table1)
	run("table2", table2)
	run("fig4", fig4)
	run("fig5", fig5)
	run("fig6", fig6)
	run("fig7", fig7)
	run("fig8", fig8)
	run("scale", scale)
	run("proof", proofExp)
	run("abi", abiExp)
	run("net", netExp)
	run("ledger", ledgerExp)
}

// iters scales iteration counts.
func iters(n int) int {
	if *quick {
		n /= 10
		if n < 10 {
			n = 10
		}
	}
	return n
}

// medianNs measures fn's latency as the median over runs batches.
func medianNs(runs, per int, fn func()) float64 {
	samples := make([]float64, 0, runs)
	for r := 0; r < runs; r++ {
		start := time.Now()
		for i := 0; i < per; i++ {
			fn()
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds())/float64(per))
	}
	sort.Float64s(samples)
	return samples[len(samples)/2]
}

func mustKernel(opts kernel.Options) *kernel.Kernel {
	t, err := tpm.Manufacture(1024)
	if err != nil {
		panic(err)
	}
	k, err := kernel.Boot(t, disk.New(), opts)
	if err != nil {
		panic(err)
	}
	// The decision audit log rides the authorize miss path (a mutex plus a
	// SHA-256 per verdict); the paper reproductions measure the dispatch
	// pipeline itself, so keep the recorded trajectories comparable across
	// PRs by excluding it here. Production configurations leave it on.
	k.Audit().Disable()
	return k
}

// -------------------------------------------------------------- Table 1

func table1() error {
	n := iters(20000)
	type row struct {
		name             string
		bare, std, linux float64
	}
	var rows []row

	kBare := mustKernel(kernel.Options{NoInterposition: true, NoAuthorization: true})
	pBare, _ := kBare.CreateProcess(0, []byte("bench"))
	kStd := mustKernel(kernel.Options{NoAuthorization: true})
	sStd, _ := kStd.NewSession([]byte("bench"))
	m := monolith.New()
	mpid := m.Spawn(1)

	rows = append(rows,
		row{"null",
			medianNs(9, n, func() { pBare.Null() }),
			medianNs(9, n, func() { sStd.Null() }),
			-1},
		row{"getppid",
			medianNs(9, n, func() { pBare.GetPPID() }),
			medianNs(9, n, func() { sStd.GetPPID() }),
			medianNs(9, n, func() { m.GetPPID(mpid) })},
		row{"gettimeofday",
			medianNs(9, n, func() { pBare.GetTimeOfDay() }),
			medianNs(9, n, func() { sStd.GetTimeOfDay() }),
			medianNs(9, n, func() { m.GetTimeOfDay() })},
		row{"yield",
			medianNs(9, n, func() { pBare.Yield() }),
			medianNs(9, n, func() { sStd.Yield() }),
			medianNs(9, n, func() { m.Yield() })},
	)

	// File operations: Nexus standard (user-level FS over IPC) vs monolith.
	fsrv, err := fsys.New(kStd)
	if err != nil {
		return err
	}
	c, err := fsrv.ClientFor(sStd)
	if err != nil {
		return err
	}
	if err := c.Create("/bench"); err != nil {
		return err
	}
	fd, _ := c.Open("/bench")
	c.Write(fd, []byte("seed"))
	m.Create("/bench")
	mfd, _ := m.Open("/bench")
	m.Write(mfd, []byte("seed"))

	fileN := iters(4000)
	rows = append(rows,
		row{"open", -1,
			medianNs(9, fileN, func() { fd, _ := c.Open("/bench"); c.Close(fd) }),
			medianNs(9, fileN, func() { fd, _ := m.Open("/bench"); m.Close(fd) })},
		row{"read", -1,
			medianNs(9, fileN, func() { c.Read(fd, 4) }),
			medianNs(9, fileN, func() { m.Read(mfd, 4) })},
		row{"write", -1,
			medianNs(9, fileN, func() { c.Write(fd, []byte("abcd")) }),
			medianNs(9, fileN, func() { m.Write(mfd, []byte("abcd")) })},
	)

	fmt.Printf("%-14s %12s %12s %12s\n", "syscall", "Nexus bare", "Nexus", "monolith")
	for _, r := range rows {
		fmt.Printf("%-14s %12s %12s %12s\n", r.name, ns(r.bare), ns(r.std), ns(r.linux))
	}
	fmt.Println("(open/close/read/write pay the user-level fileserver IPC path;")
	fmt.Println(" interpositioning adds a roughly constant marshaling cost)")
	return nil
}

func ns(v float64) string {
	if v < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f ns", v)
}

// -------------------------------------------------------------- Table 2

func table2() error {
	counts, order, err := tcbCounts("internal")
	if err != nil {
		// When run outside the repo, report and continue.
		fmt.Printf("source tree not found (%v); run from the repository root\n", err)
		return nil
	}
	total := 0
	fmt.Printf("%-28s %8s\n", "component", "lines")
	for _, name := range order {
		fmt.Printf("%-28s %8d\n", name, counts[name])
		total += counts[name]
	}
	fmt.Printf("%-28s %8d\n", "TOTAL", total)
	return nil
}

// -------------------------------------------------------------- Figure 4

func fig4() error {
	n := iters(5000)
	fmt.Printf("%-12s %14s %14s\n", "case", "kernel cache", "no cache")
	for _, name := range []string{"syscall", "no goal", "no proof", "not sound", "pass", "no cred", "embed auth", "auth"} {
		withCache := fig4Case(name, true, n)
		noCache := fig4Case(name, false, n)
		fmt.Printf("%-12s %11.0f ns %11.0f ns\n", name, withCache, noCache)
	}
	return nil
}

func fig4Case(name string, cache bool, n int) float64 {
	k := mustKernel(kernel.Options{DisableDecisionCache: !cache})
	g := guard.New(k)
	k.SetGuard(g)
	srv, _ := k.CreateProcess(0, []byte("srv"))
	cli, _ := k.CreateProcess(0, []byte("cli"))
	port, _ := k.CreatePort(srv, func(kernel.Caller, *kernel.Msg) ([]byte, error) { return nil, nil })
	call := func() { k.Call(cli, port.ID, &kernel.Msg{Op: "read", Obj: "obj"}) }
	goal := nal.MustParse("?S says wantsAccess")

	switch name {
	case "syscall":
		k.SetAuthorization(false)
	case "no goal":
		k.SetGoal(srv, "read", "obj", nal.TrueF{}, nil)
	case "no proof":
		k.SetGoal(srv, "read", "obj", goal, nil)
	case "not sound":
		k.SetGoal(srv, "read", "obj", goal, nil)
		bad := nal.MustParse("Other says wantsAccess")
		k.SetProof(cli, "read", "obj", proof.Assume(0, bad), []kernel.Credential{{Inline: bad}})
	case "pass":
		k.SetGoal(srv, "read", "obj", goal, nil)
		cred := nal.Says{P: cli.Prin, F: nal.Pred{Name: "wantsAccess"}}
		k.SetProof(cli, "read", "obj", proof.Assume(0, cred), []kernel.Credential{{Inline: cred}})
	case "no cred":
		k.SetGoal(srv, "read", "obj", goal, nil)
		l, _ := cli.Labels.Say("wantsAccess")
		k.SetProof(cli, "read", "obj", proof.Assume(0, l.Formula),
			[]kernel.Credential{{Ref: &kernel.LabelRef{PID: cli.PID, Handle: l.Handle}}})
	case "embed auth":
		ag := nal.MustParse("Clock says ok")
		k.SetGoal(srv, "read", "obj", ag, nil)
		ch := g.RegisterEmbedded("clock", func(nal.Formula) bool { return true })
		k.SetProof(cli, "read", "obj",
			&proof.Proof{Steps: []proof.Step{{Rule: proof.RuleAuthority, Channel: ch, F: ag}}}, nil)
	case "auth":
		ag := nal.MustParse("Clock says ok")
		k.SetGoal(srv, "read", "obj", ag, nil)
		ap, _ := k.CreateProcess(0, []byte("authority"))
		a, _ := k.RegisterAuthority(ap, func(nal.Formula) bool { return true })
		k.SetProof(cli, "read", "obj",
			&proof.Proof{Steps: []proof.Step{{Rule: proof.RuleAuthority, Channel: a.Channel(), F: ag}}}, nil)
	}
	return medianNs(7, n, call)
}

// -------------------------------------------------------------- Figure 5

func fig5() error {
	n := iters(3000)
	fmt.Printf("%-10s %6s %14s %14s\n", "family", "rules", "eval only (E)", "full (F)")
	for _, family := range []string{"delegate", "negate", "boolean"} {
		for _, rules := range []int{1, 2, 4, 8, 12, 16, 20} {
			pf, goal, creds := fig5Proof(family, rules)
			env := &proof.Env{Credentials: creds}
			e := medianNs(7, n, func() {
				if _, err := proof.Check(pf, goal, env); err != nil {
					panic(err)
				}
			})

			k := mustKernel(kernel.Options{DisableDecisionCache: true})
			g := guard.New(k)
			g.SetCacheSize(0)
			k.SetGuard(g)
			srv, _ := k.CreateProcess(0, []byte("srv"))
			cli, _ := k.CreateProcess(0, []byte("cli"))
			port, _ := k.CreatePort(srv, func(kernel.Caller, *kernel.Msg) ([]byte, error) { return nil, nil })
			k.SetGoal(srv, "read", "obj", goal, nil)
			var kcreds []kernel.Credential
			for _, c := range creds {
				kcreds = append(kcreds, kernel.Credential{Inline: c})
			}
			k.SetProof(cli, "read", "obj", pf, kcreds)
			f := medianNs(7, n, func() {
				if _, err := k.Call(cli, port.ID, &kernel.Msg{Op: "read", Obj: "obj"}); err != nil {
					panic(err)
				}
			})
			fmt.Printf("%-10s %6d %11.0f ns %11.0f ns\n", family, rules, e, f)
		}
	}
	return nil
}

// fig5Proof mirrors the bench builder (duplicated to keep the command
// self-contained).
func fig5Proof(family string, n int) (*proof.Proof, nal.Formula, []nal.Formula) {
	switch family {
	case "negate":
		base := nal.MustParse("a")
		creds := []nal.Formula{base}
		steps := []proof.Step{{Rule: proof.RuleLabel, Label: 0, F: base}}
		cur := nal.Formula(base)
		for i := 0; i < n; i++ {
			cur = nal.Not{F: nal.Not{F: cur}}
			steps = append(steps, proof.Step{Rule: proof.RuleNotNotI, Premises: []int{len(steps) - 1}, F: cur})
		}
		return &proof.Proof{Steps: steps}, cur, creds
	case "boolean":
		base := nal.MustParse("a")
		creds := []nal.Formula{base}
		steps := []proof.Step{{Rule: proof.RuleLabel, Label: 0, F: base}}
		cur := nal.Formula(base)
		for i := 0; i < n; i++ {
			cur = nal.And{L: base, R: cur}
			steps = append(steps, proof.Step{Rule: proof.RuleAndI, Premises: []int{0, len(steps) - 1}, F: cur})
		}
		return &proof.Proof{Steps: steps}, cur, creds
	default:
		var creds []nal.Formula
		start := nal.Says{P: nal.Name("P0"), F: nal.Pred{Name: "s"}}
		creds = append(creds, start)
		for i := 0; i < n; i++ {
			creds = append(creds, nal.SpeaksFor{
				A: nal.Name(fmt.Sprintf("P%d", i)),
				B: nal.Name(fmt.Sprintf("P%d", i+1)),
			})
		}
		steps := []proof.Step{{Rule: proof.RuleLabel, Label: 0, F: start}}
		var cur nal.Formula = start
		for i := 0; i < n; i++ {
			steps = append(steps, proof.Step{Rule: proof.RuleLabel, Label: i + 1, F: creds[i+1]})
			cur = nal.Says{P: nal.Name(fmt.Sprintf("P%d", i+1)), F: nal.Pred{Name: "s"}}
			steps = append(steps, proof.Step{
				Rule:     proof.RuleSpeaksForE,
				Premises: []int{len(steps) - 1, len(steps) - 2},
				F:        cur,
			})
		}
		return &proof.Proof{Steps: steps}, cur, creds
	}
}

// -------------------------------------------------------------- Figure 6

func fig6() error {
	n := iters(2000)
	k := mustKernel(kernel.Options{})
	g := guard.New(k)
	k.SetGuard(g)
	srv, _ := k.CreateProcess(0, []byte("srv"))
	cli, _ := k.CreateProcess(0, []byte("cli"))
	ap, _ := k.CreateProcess(0, []byte("authority"))
	goal := nal.MustParse("?S says wantsAccess")
	cred := nal.Says{P: cli.Prin, F: nal.Pred{Name: "wantsAccess"}}
	pf := proof.Assume(0, cred)

	fmt.Printf("%-12s %12s\n", "operation", "latency")
	fmt.Printf("%-12s %9.0f ns\n", "auth add", medianNs(5, n/10, func() {
		k.RegisterAuthority(ap, func(nal.Formula) bool { return true })
	}))
	fmt.Printf("%-12s %9.0f ns\n", "goal set", medianNs(7, n, func() {
		k.SetGoal(srv, "read", "obj", goal, nil)
	}))
	fmt.Printf("%-12s %9.0f ns\n", "goal clr", medianNs(7, n, func() {
		k.ClearGoal(srv, "read", "obj")
	}))
	fmt.Printf("%-12s %9.0f ns\n", "proof set", medianNs(7, n, func() {
		k.SetProof(cli, "read", "obj", pf, []kernel.Credential{{Inline: cred}})
	}))
	fmt.Printf("%-12s %9.0f ns\n", "proof clr", medianNs(7, n, func() {
		k.ClearProof(cli, "read", "obj")
	}))
	credPID := medianNs(7, n, func() { cli.Labels.Say("isTypeSafe(hash:ab12)") })
	fmt.Printf("%-12s %9.0f ns\n", "cred add", credPID)

	l, _ := cli.Labels.Say("isTypeSafe(hash:ab12)")
	credKey := medianNs(5, n/20+1, func() {
		ext, err := cli.Labels.Externalize(l.Handle)
		if err != nil {
			panic(err)
		}
		if _, err := cli.Labels.Import(ext); err != nil {
			panic(err)
		}
	})
	fmt.Printf("\n%-12s %9.0f ns\n", "cred pid", credPID)
	fmt.Printf("%-12s %9.0f ns   (x%.0f: crypto avoidance, cf. paper's 3 orders)\n",
		"cred key", credKey, credKey/credPID)
	return nil
}

// -------------------------------------------------------------- Figure 7

func fig7() error {
	n := iters(20000)
	cases := []struct {
		name string
		cfg  netdev.Config
	}{
		{"kern-int", netdev.Config{}},
		{"user-int", netdev.Config{UserDriver: true}},
		{"kern-drv", netdev.Config{ServerApp: true}},
		{"user-drv", netdev.Config{UserDriver: true, ServerApp: true}},
		{"kref min", netdev.Config{ServerApp: true, RefMon: netdev.RefKernel, Cache: true}},
		{"kref max", netdev.Config{ServerApp: true, RefMon: netdev.RefKernel}},
		{"uref min", netdev.Config{UserDriver: true, ServerApp: true, RefMon: netdev.RefUser, Cache: true}},
		{"uref max", netdev.Config{UserDriver: true, ServerApp: true, RefMon: netdev.RefUser}},
	}
	fmt.Printf("%-10s %14s %14s\n", "config", "100 B (pps)", "1500 B (pps)")
	for _, c := range cases {
		var pps [2]float64
		for i, size := range []int{100, 1500} {
			k := mustKernel(kernel.Options{NoAuthorization: true})
			e, err := netdev.NewEchoPath(k, c.cfg)
			if err != nil {
				return err
			}
			frame := netdev.MakeFrame(size)
			lat := medianNs(7, n, func() {
				if _, err := e.Process(frame); err != nil {
					panic(err)
				}
			})
			pps[i] = 1e9 / lat
		}
		fmt.Printf("%-10s %14.0f %14.0f\n", c.name, pps[0], pps[1])
	}
	return nil
}

// -------------------------------------------------------------- Figure 8

func fig8() error {
	n := iters(300)
	sizes := []int{100, 1 << 10, 10 << 10, 100 << 10, 1 << 20}
	if *quick {
		sizes = []int{100, 10 << 10, 100 << 10}
	}

	type variant struct {
		name string
		cfg  fauxbook.StackConfig
	}
	groups := []struct {
		title    string
		variants []variant
	}{
		{"access control", []variant{
			{"none", fauxbook.StackConfig{}},
			{"static", fauxbook.StackConfig{Access: fauxbook.AccessStatic}},
			{"dynamic", fauxbook.StackConfig{Access: fauxbook.AccessDynamic}},
		}},
		{"introspection (reference monitors)", []variant{
			{"none", fauxbook.StackConfig{}},
			{"kernel +cache", fauxbook.StackConfig{RefMon: fauxbook.StackRefKernel, RefMonCache: true}},
			{"kernel -cache", fauxbook.StackConfig{RefMon: fauxbook.StackRefKernel}},
			{"user +cache", fauxbook.StackConfig{RefMon: fauxbook.StackRefUser, RefMonCache: true}},
			{"user -cache", fauxbook.StackConfig{RefMon: fauxbook.StackRefUser}},
		}},
		{"attested storage", []variant{
			{"none", fauxbook.StackConfig{}},
			{"hash", fauxbook.StackConfig{Storage: fauxbook.StoreHashed}},
			{"decrypt", fauxbook.StackConfig{Storage: fauxbook.StoreEncrypted}},
		}},
	}

	for _, dyn := range []bool{false, true} {
		row := "static files"
		if dyn {
			row = "dynamic (tenant interpreter)"
		}
		for _, grp := range groups {
			fmt.Printf("--- %s, %s: req/s by filesize ---\n", row, grp.title)
			fmt.Printf("%-16s", "variant")
			for _, s := range sizes {
				fmt.Printf(" %10s", sizeName(s))
			}
			fmt.Println()
			for _, v := range grp.variants {
				cfg := v.cfg
				cfg.Dynamic = dyn
				fmt.Printf("%-16s", v.name)
				for _, size := range sizes {
					rps, err := fig8Point(cfg, size, n)
					if err != nil {
						return fmt.Errorf("%s/%d: %w", v.name, size, err)
					}
					fmt.Printf(" %10.0f", rps)
				}
				fmt.Println()
			}
			fmt.Println()
		}
	}
	return nil
}

func fig8Point(cfg fauxbook.StackConfig, size, n int) (float64, error) {
	t, err := tpm.Manufacture(1024)
	if err != nil {
		return 0, err
	}
	t.Extend(tpm.PCRKernel, []byte("nexus"))
	if err := t.TakeOwnership([]tpm.PCRIndex{tpm.PCRKernel}); err != nil {
		return 0, err
	}
	var mgr *ssr.Manager
	if cfg.Storage != fauxbook.StorePlain {
		if mgr, err = ssr.Init(t, disk.New()); err != nil {
			return 0, err
		}
	}
	k := mustKernel(kernel.Options{})
	w, err := fauxbook.NewWebStack(k, mgr, cfg)
	if err != nil {
		return 0, err
	}
	content := make([]byte, size)
	for i := range content {
		content[i] = byte('a' + i%26)
	}
	if err := w.PutFile("/doc", content); err != nil {
		return 0, err
	}
	// Scale iterations down for large files so runtime stays bounded.
	per := n
	if size >= 100<<10 {
		per = n / 10
	}
	if per < 5 {
		per = 5
	}
	lat := medianNs(5, per, func() {
		if _, err := w.Request("/doc"); err != nil {
			panic(err)
		}
	})
	return 1e9 / lat, nil
}

// -------------------------------------------------------------- Scaling

// scale is the lock-decomposition experiment: end-to-end dispatch
// throughput (warm decision cache, authorization and interpositioning on)
// as client concurrency grows. With the kernel decomposed into concurrent
// registries, ops/sec should track the available cores; under a
// kernel-global lock it stays flat however many workers are added.
func scale() error {
	total := iters(400000)
	fmt.Printf("GOMAXPROCS=%d (speedup is bounded by available cores)\n\n", runtime.GOMAXPROCS(0))
	fmt.Printf("%-8s %16s %16s\n", "workers", "syscall (ops/s)", "IPC (ops/s)")
	for _, workers := range []int{1, 2, 4, 8} {
		k := mustKernel(kernel.Options{})
		srv, _ := k.CreateProcess(0, []byte("srv"))
		pt, err := k.CreatePort(srv, func(kernel.Caller, *kernel.Msg) ([]byte, error) {
			return []byte("ok"), nil
		})
		if err != nil {
			return err
		}
		procs := make([]*kernel.Process, workers)
		for i := range procs {
			p, err := k.CreateProcess(0, []byte(fmt.Sprintf("w%d", i)))
			if err != nil {
				return err
			}
			// Warm the (subject, op, obj) decisions off the measured path.
			if err := p.Null(); err != nil {
				return err
			}
			if _, err := k.Call(p, pt.ID, &kernel.Msg{Op: "read", Obj: "obj"}); err != nil {
				return err
			}
			procs[i] = p
		}

		var failures atomic.Int64
		parallel := func(op func(p *kernel.Process) error) float64 {
			per := total / workers
			var wg sync.WaitGroup
			start := time.Now()
			for _, p := range procs {
				wg.Add(1)
				go func(p *kernel.Process) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if err := op(p); err != nil {
							failures.Add(1)
						}
					}
				}(p)
			}
			wg.Wait()
			return float64(per*workers) / time.Since(start).Seconds()
		}

		sys := parallel(func(p *kernel.Process) error { return p.Null() })
		ipc := parallel(func(p *kernel.Process) error {
			_, err := k.Call(p, pt.ID, &kernel.Msg{Op: "read", Obj: "obj"})
			return err
		})
		if n := failures.Load(); n > 0 {
			return fmt.Errorf("scale: %d operations failed; throughput numbers are invalid", n)
		}
		fmt.Printf("%-8d %16.0f %16.0f\n", workers, sys, ipc)
	}
	return nil
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dkB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/kernel"
	"repro/internal/nal"
	"repro/internal/nal/proof"
)

// netExp measures the distributed attestation plane and records the
// results in BENCH_net.json. Rows:
//
//	call/local            same call served by the local dispatch pipeline
//	call/remote-loopback  cross-node call over the in-memory transport
//	call/remote-pipelined remote-loopback calls overlapped through the
//	                      pipelined request window
//	submit-remote/batch64 per-op cost of a 64-op batched remote submission
//	conn/churn            one connection lifetime: dial (attested
//	                      handshake + scheduler registration) and close
//	conn/idle-mem         ns/op is the dial cost amortized over 1024
//	                      connections; bytes/op is the settled heap per
//	                      established idle connection (both endpoints —
//	                      loopback keeps client and server in-process)
//	call/remote-tcp       cross-node call over the TCP backend
//	call/remote-tcp-batch64 per-op cost of a 64-op batch over TCP
//	tcp/wakeups-per-req   ns_per_op abused as a ratio: blocking poll
//	                      wakeups per TCP request, both kernels summed —
//	                      the wakeup-free datapath acceptance figure
//	egress/coalesce       ns_per_op abused as a ratio: frames per egress
//	                      flush during a pipelined TCP burst (how many
//	                      frames each write carries)
//	call/remote-authz     cross-node call with credential-backed guard
//	                      authorization on the serving kernel (warm)
//	xfer/label            externalize + transfer + verified ingress intern
//	                      (cold: distinct labels defeat every cache)
//	xfer/label-warm       re-crossing of an already-attested label:
//	                      memoized certificate + session-key HMAC
//	wire/encode-warm      egress encode of an already-sent formula
//	wire/decode-warm      ingress decode of an already-seen formula
//	                      (the zero-alloc acceptance row)
//	wire/decode-cold      first-presentation decode into the cons DAG
//
// The remote-vs-local overhead ratio is printed alongside.
type netRow struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	AllocsOp  int64   `json:"allocs_per_op"`
	BytesOp   int64   `json:"bytes_per_op"`
	Iteration int     `json:"iterations"`
}

func netBenchRow(name string, body func(b *testing.B)) netRow {
	r := testing.Benchmark(body)
	return netRow{
		Name:      name,
		NsPerOp:   float64(r.NsPerOp()),
		AllocsOp:  r.AllocsPerOp(),
		BytesOp:   r.AllocedBytesPerOp(),
		Iteration: r.N,
	}
}

func netExp() error {
	kStore := mustKernel(kernel.Options{})
	kStore.SetGuard(guard.New(kStore))
	kFront := mustKernel(kernel.Options{})

	srv, err := kStore.NewSession([]byte("net-srv"))
	if err != nil {
		return err
	}
	// The reply buffer is preallocated: the rows below measure the dispatch
	// and transport planes, not a per-call string conversion in the handler.
	okReply := []byte("ok")
	pc, err := srv.Listen(func(kernel.Caller, *kernel.Msg) ([]byte, error) {
		return okReply, nil
	})
	if err != nil {
		return err
	}
	port, _ := srv.PortOf(pc)

	lt := kernel.NewLoopbackTransport()
	nStore := kernel.NewNode(kStore)
	l, err := lt.Listen("exp")
	if err != nil {
		return err
	}
	nStore.Serve(l)
	defer nStore.Close()
	if err := nStore.Export("echo", port); err != nil {
		return err
	}
	nFront := kernel.NewNode(kFront)
	defer nFront.Close()
	peer, err := nFront.Dial(lt, "exp")
	if err != nil {
		return err
	}
	cli, err := kFront.NewSession([]byte("net-cli"))
	if err != nil {
		return err
	}
	rc, err := cli.Connect(peer, "echo")
	if err != nil {
		return err
	}

	m := &kernel.Msg{Op: "read", Obj: "obj"}
	var rows []netRow

	local := netBenchRow("call/local", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := srv.Call(pc, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	rows = append(rows, local)

	remote := netBenchRow("call/remote-loopback", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cli.CallRemote(rc, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	rows = append(rows, remote)

	// Pipelined remote calls: many callers overlap their round-trips inside
	// the per-connection in-flight window instead of waiting lockstep.
	rows = append(rows, netBenchRow("call/remote-pipelined", func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(16)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := cli.CallRemote(rc, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}))

	// Batched remote submission: 64 ops per wire exchange; the row records
	// the per-op cost (one frame each way amortized across the batch).
	const batchOps = 64
	subs := make([]kernel.Sub, batchOps)
	for i := range subs {
		subs[i] = kernel.Sub{Cap: rc, Op: "read", Obj: "obj", Tag: uint64(i)}
	}
	var comps []kernel.Completion
	batch := netBenchRow("submit-remote/batch64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			comps, err = cli.SubmitRemote(nil, rc, subs, comps)
			if err != nil {
				b.Fatal(err)
			}
			for j := range comps {
				if comps[j].Err != nil {
					b.Fatal(comps[j].Err)
				}
			}
		}
	})
	batch.NsPerOp /= batchOps
	batch.AllocsOp /= batchOps
	batch.BytesOp /= batchOps
	rows = append(rows, batch)

	// Connection churn: a full dial+close cycle. The handshake dominates
	// (two Ed25519 signatures, an X25519 exchange); the runtime adds only
	// scheduler registration, so this row is also the shed-recovery rate.
	rows = append(rows, netBenchRow("conn/churn", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := nFront.Dial(lt, "exp")
			if err != nil {
				b.Fatal(err)
			}
			p.Close()
		}
	}))

	// Idle-connection memory: 1024 established connections held open, the
	// settled heap delta divided per connection. Loopback keeps both
	// endpoints in this process, so the figure covers a client Peer plus a
	// serverConn together — the honest per-link cost. No goroutines are
	// held (see TestTransportGoroutineFootprint), so this is the whole
	// marginal footprint of an idle connection.
	{
		const idleConns = 1024
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		peers := make([]*kernel.Peer, 0, idleConns)
		t0 := time.Now()
		for i := 0; i < idleConns; i++ {
			p, err := nFront.Dial(lt, "exp")
			if err != nil {
				return fmt.Errorf("idle dial %d: %w", i, err)
			}
			peers = append(peers, p)
		}
		dialNs := float64(time.Since(t0).Nanoseconds()) / idleConns
		runtime.GC()
		runtime.ReadMemStats(&m1)
		var perConn int64
		if m1.HeapAlloc > m0.HeapAlloc {
			perConn = int64(m1.HeapAlloc-m0.HeapAlloc) / idleConns
		}
		rows = append(rows, netRow{Name: "conn/idle-mem", NsPerOp: dialNs, BytesOp: perConn, Iteration: idleConns})
		for _, p := range peers {
			p.Close()
		}
	}

	// TCP backend on the local loopback interface.
	var tr kernel.TCPTransport
	if tl, err := tr.Listen("127.0.0.1:0"); err == nil {
		nStore.Serve(tl)
		if tpeer, err := nFront.Dial(tr, tl.Addr()); err == nil {
			if tc, err := cli.Connect(tpeer, "echo"); err == nil {
				tcp := netBenchRow("call/remote-tcp", func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := cli.CallRemote(tc, m); err != nil {
							b.Fatal(err)
						}
					}
				})
				rows = append(rows, tcp)

				// Poll-wakeup accounting over a dedicated warm loop (not the
				// benchmark above: testing.Benchmark's calibration runs would
				// inflate the numerator against the final run's iteration
				// count). The per-shard pollers should wake once per inbound
				// frame at most, so a lockstep request/response must land
				// near 2 wakeups/request — one per direction.
				{
					const wakeReqs = 5000
					wake0 := kStore.Metrics().NetPollWakeups + kFront.Metrics().NetPollWakeups
					for i := 0; i < wakeReqs; i++ {
						if _, err := cli.CallRemote(tc, m); err != nil {
							return fmt.Errorf("wakeup loop: %w", err)
						}
					}
					wake1 := kStore.Metrics().NetPollWakeups + kFront.Metrics().NetPollWakeups
					perReq := float64(wake1-wake0) / float64(wakeReqs)
					fmt.Printf("net_poll_wakeups per TCP request: %.2f\n", perReq)
					rows = append(rows, netRow{Name: "tcp/wakeups-per-req", NsPerOp: perReq, Iteration: wakeReqs})
				}

				// Batched remote submission over TCP: the batch64 sibling of
				// the loopback row, with real sockets and the contiguous
				// egress combiner under it.
				tsubs := make([]kernel.Sub, batchOps)
				for i := range tsubs {
					tsubs[i] = kernel.Sub{Cap: tc, Op: "read", Obj: "obj", Tag: uint64(i)}
				}
				var tcomps []kernel.Completion
				tbatch := netBenchRow("call/remote-tcp-batch64", func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						var err error
						tcomps, err = cli.SubmitRemote(nil, tc, tsubs, tcomps)
						if err != nil {
							b.Fatal(err)
						}
						for j := range tcomps {
							if tcomps[j].Err != nil {
								b.Fatal(tcomps[j].Err)
							}
						}
					}
				})
				tbatch.NsPerOp /= batchOps
				tbatch.AllocsOp /= batchOps
				tbatch.BytesOp /= batchOps
				rows = append(rows, tbatch)

				// Egress coalescing ratio: a pipelined burst overlaps many
				// requests in flight, so responses produced within one
				// scheduling quantum leave in one write. frames/flush ≈ 1 is
				// lockstep; the pipelined figure is the coalescing win.
				snap := func() (flushes, frames uint64) {
					s0, s1 := kStore.Metrics(), kFront.Metrics()
					return s0.NetEgressFlushes + s1.NetEgressFlushes,
						s0.NetEgressCoalescedFrames + s1.NetEgressCoalescedFrames
				}
				fl0, fr0 := snap()
				coal := netBenchRow("egress/coalesce", func(b *testing.B) {
					b.SetParallelism(16)
					b.RunParallel(func(pb *testing.PB) {
						for pb.Next() {
							if _, err := cli.CallRemote(tc, m); err != nil {
								b.Fatal(err)
							}
						}
					})
				})
				fl1, fr1 := snap()
				if fl1 > fl0 {
					ratio := float64(fr1-fr0) / float64(fl1-fl0)
					fmt.Printf("egress coalescing (pipelined TCP): %.2f frames/flush over %d flushes\n", ratio, fl1-fl0)
					coal.NsPerOp = ratio
					coal.AllocsOp, coal.BytesOp = 0, 0
					rows = append(rows, coal)
				}
			}
			// Tear the TCP link down before the loopback rows below: a live
			// socket on a shard makes its worker park in epoll, and loopback
			// traffic sharing that shard would pay eventfd kicks instead of
			// condvar handoffs — cross-backend interference, not signal.
			tpeer.Close()
		}
	}

	// Credential-backed authorization on the serving kernel: goal demanding
	// the client's attested statement, proof bound remotely, decisions
	// uncacheable (reference credential) so every call crosses the guard.
	frontNK := kFront.NKFingerprint()
	goal := nal.Says{P: nal.Key(frontNK), F: nal.Says{P: cli.Prin(), F: nal.Pred{Name: "mayBench"}}}
	if err := srv.SetGoal("bench", "guarded", goal, nil); err != nil {
		return err
	}
	lbl, err := cli.Say("mayBench")
	if err != nil {
		return err
	}
	rl, err := cli.TransferLabelRemote(peer, lbl.Handle)
	if err != nil {
		return err
	}
	if err := cli.SetProofRemote(peer, "bench", "guarded", proof.Assume(0, goal),
		[]kernel.RemoteCred{{Ref: rl.Handle}}); err != nil {
		return err
	}
	gm := &kernel.Msg{Op: "bench", Obj: "guarded"}
	if _, err := cli.CallRemote(rc, gm); err != nil {
		return fmt.Errorf("guarded remote call: %w", err)
	}
	rows = append(rows, netBenchRow("call/remote-authz", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cli.CallRemote(rc, gm); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Label transfer: externalize (Ed25519 sign) + ship + verified ingress.
	// Distinct labels defeat the verify cache, so this is the cold path.
	rows = append(rows, netBenchRow("xfer/label", func(b *testing.B) {
		b.ReportAllocs()
		labels := make([]int, b.N)
		for i := range labels {
			l, err := cli.Say(fmt.Sprintf("attested(%d)", i))
			if err != nil {
				b.Fatal(err)
			}
			labels[i] = l.Handle
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cli.TransferLabelRemote(peer, labels[i]); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Warm transfer: the same label re-crosses the connection. Egress reuses
	// the memoized certificate, ingress authenticates by session-key HMAC
	// against the connection's re-attestation table — no public-key
	// operation on either side.
	warmLbl, err := cli.Say("attestedWarm")
	if err != nil {
		return err
	}
	if _, err := cli.TransferLabelRemote(peer, warmLbl.Handle); err != nil {
		return err
	}
	rows = append(rows, netBenchRow("xfer/label-warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cli.TransferLabelRemote(peer, warmLbl.Handle); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Wire codec rows.
	f, err := nal.Parse(`key:deadbeef.boot77.ipd.12 says mayArchive(walls, "alice", 42)`)
	if err != nil {
		return err
	}
	enc := nal.NewWireEncoder()
	cold, err := enc.AppendFormula(nil, f)
	if err != nil {
		return err
	}
	warm, err := enc.AppendFormula(nil, f)
	if err != nil {
		return err
	}
	dec := nal.NewWireDecoder()
	if _, _, err := dec.DecodeFormula(cold); err != nil {
		return err
	}
	fid := mustID(f)
	rows = append(rows, netBenchRow("wire/encode-warm", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 64)
		for i := 0; i < b.N; i++ {
			buf = enc.AppendFormulaID(buf[:0], fid)
		}
	}))
	rows = append(rows, netBenchRow("wire/decode-warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := dec.DecodeFormula(warm); err != nil {
				b.Fatal(err)
			}
		}
	}))
	rows = append(rows, netBenchRow("wire/decode-cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := nal.NewWireDecoder()
			if _, _, err := d.DecodeFormula(cold); err != nil {
				b.Fatal(err)
			}
		}
	}))

	fmt.Printf("%-22s %12s %10s %10s\n", "path", "ns/op", "allocs/op", "B/op")
	for _, r := range rows {
		fmt.Printf("%-22s %12.0f %10d %10d\n", r.Name, r.NsPerOp, r.AllocsOp, r.BytesOp)
	}
	if local.NsPerOp > 0 {
		fmt.Printf("\nremote/local overhead: %.1fx\n", remote.NsPerOp/local.NsPerOp)
	}

	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_net.json", append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_net.json")
	return nil
}

func mustID(f nal.Formula) nal.FormulaID {
	id, ok := nal.IDOf(f)
	if !ok {
		panic("cons table saturated")
	}
	return id
}

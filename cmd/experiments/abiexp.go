package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/tpm"
)

// abiExp measures the user↔kernel ABI and records the results in
// BENCH_abi.json: per-operation latency of the single-call path
// (Session.Call) against batched submission at depths 1, 8, and 64, under
// the full dispatch pipeline (warm authorization + interposition
// marshaling). This is the acceptance exhibit for the ABI redesign: the
// batch amortizes marshaling and entry overhead while still authorizing
// every operation, so batch=64 per-op latency must undercut single-call.
type abiRow struct {
	Name       string  `json:"name"`
	Depth      int     `json:"batch_depth"`
	NsPerOp    float64 `json:"ns_per_op"`
	AllocsOp   float64 `json:"allocs_per_op"`
	BytesOp    float64 `json:"bytes_per_op"`
	Iterations int     `json:"iterations"`
}

// abiGuard admits every request cacheably (Figure 4 steady state).
type abiGuard struct{}

func (abiGuard) Check(*kernel.GuardRequest) kernel.GuardDecision {
	return kernel.GuardDecision{Allow: true, Cacheable: true}
}

func abiExp() error {
	t, err := tpm.Manufacture(1024)
	if err != nil {
		return err
	}
	k, err := kernel.Boot(t, disk.New(), kernel.Options{})
	if err != nil {
		return err
	}
	k.SetGuard(abiGuard{})
	srv, err := k.NewSession([]byte("abi-srv"))
	if err != nil {
		return err
	}
	pc, err := srv.Listen(func(kernel.Caller, *kernel.Msg) ([]byte, error) { return nil, nil })
	if err != nil {
		return err
	}
	portID, err := srv.PortOf(pc)
	if err != nil {
		return err
	}
	cli, err := k.NewSession([]byte("abi-cli"))
	if err != nil {
		return err
	}
	ch, err := cli.Open(portID)
	if err != nil {
		return err
	}
	arg := make([]byte, 64)
	m := &kernel.Msg{Op: "read", Obj: "obj", Args: [][]byte{arg}}
	if _, err := cli.Call(ch, m); err != nil {
		return err
	}

	var rows []abiRow
	add := func(name string, depth int, body func(b *testing.B)) {
		r := testing.Benchmark(body)
		// Per-op figures: each iteration below is one operation.
		rows = append(rows, abiRow{
			Name:       name,
			Depth:      depth,
			NsPerOp:    float64(r.NsPerOp()),
			AllocsOp:   float64(r.AllocsPerOp()),
			BytesOp:    float64(r.AllocedBytesPerOp()),
			Iterations: r.N,
		})
	}

	add("call/single", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cli.Call(ch, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, depth := range []int{1, 8, 64} {
		subs := make([]kernel.Sub, depth)
		for i := range subs {
			subs[i] = kernel.Sub{Cap: ch, Op: "read", Obj: "obj", Args: [][]byte{arg}}
		}
		comps := make([]kernel.Completion, 0, depth)
		add(fmt.Sprintf("submit/batch%d", depth), depth, func(b *testing.B) {
			b.ReportAllocs()
			for done := 0; done < b.N; done += depth {
				n := depth
				if rem := b.N - done; rem < n {
					n = rem
				}
				out, err := cli.Submit(nil, subs[:n], comps)
				if err != nil {
					b.Fatal(err)
				}
				for j := range out {
					if out[j].Err != nil {
						b.Fatal(out[j].Err)
					}
				}
			}
		})
	}

	fmt.Printf("%-16s %8s %10s %8s\n", "path", "depth", "ns/op", "allocs")
	var single, batch64 float64
	for _, r := range rows {
		fmt.Printf("%-16s %8d %10.1f %8.2f\n", r.Name, r.Depth, r.NsPerOp, r.AllocsOp)
		switch r.Name {
		case "call/single":
			single = r.NsPerOp
		case "submit/batch64":
			batch64 = r.NsPerOp
		}
	}
	if single > 0 {
		fmt.Printf("batch64 speedup over single-call: %.2fx\n", single/batch64)
	}

	blob, err := json.MarshalIndent(struct {
		Note string   `json:"note"`
		Rows []abiRow `json:"rows"`
	}{
		Note: "user<->kernel ABI: Session.Call vs batched Submit, full pipeline (warm authz + interposition); per-op figures",
		Rows: rows,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_abi.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_abi.json")
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/nal"
	"repro/internal/nal/proof"
)

// proofExp measures the compiled proof pipeline and records the results in
// BENCH_proof.json, the first point of the recorded performance trajectory
// for the authorization miss path. Rows:
//
//	miss/text       novel proof text: parse + compile + check
//	warm/text       repeat proof text: parse-cache hit + compiled check
//	check/compiled  compiled check, subproof memo enabled (warm)
//	check/nomemo    compiled check, memo disabled
//	check/textref   structural reference checker (the seed's miss path)
//	compile         compilation alone
//	subframe/*      subproof-carrying proof, memo on/off
type proofRow struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	AllocsOp  int64   `json:"allocs_per_op"`
	BytesOp   int64   `json:"bytes_per_op"`
	MemoHits  uint64  `json:"memo_hits,omitempty"`
	MemoMiss  uint64  `json:"memo_misses,omitempty"`
	ProofLen  int     `json:"proof_len,omitempty"`
	ChainLen  int     `json:"chain_len,omitempty"`
	Iteration int     `json:"iterations"`
}

func benchRow(name string, extra func(*proofRow), body func(b *testing.B)) proofRow {
	r := testing.Benchmark(body)
	row := proofRow{
		Name:      name,
		NsPerOp:   float64(r.NsPerOp()),
		AllocsOp:  r.AllocsPerOp(),
		BytesOp:   r.AllocedBytesPerOp(),
		Iteration: r.N,
	}
	if extra != nil {
		extra(&row)
	}
	return row
}

func proofExp() error {
	const chain = 12
	pf, goal, creds := fig5Proof("delegate", chain)
	text := pf.String()
	env := &proof.Env{Credentials: creds}
	var rows []proofRow

	addChain := func(r proofRow) {
		r.ChainLen = chain
		r.ProofLen = pf.Len()
		rows = append(rows, r)
	}

	// Novel text: defeat the parse cache with a unique spacer per iteration.
	addChain(benchRow("miss/text", nil, func(b *testing.B) {
		b.ReportAllocs()
		texts := make([]string, b.N)
		for i := range texts {
			texts[i] = text + strings.Repeat(" ", i%197) + "\n" + fmt.Sprint(i) + ". true-i : true"
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := proof.Parse(texts[i])
			if err != nil {
				b.Fatal(err)
			}
			if _, err := proof.Check(p, p.Conclusion(), env); err != nil {
				b.Fatal(err)
			}
		}
	}))
	addChain(benchRow("warm/text", nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := proof.Parse(text)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := proof.Check(p, goal, env); err != nil {
				b.Fatal(err)
			}
		}
	}))

	c, err := pf.Compiled()
	if err != nil {
		return err
	}
	before := proof.MemoStats()
	addChain(benchRow("check/compiled", func(r *proofRow) {
		s := proof.MemoStats()
		r.MemoHits = s.Hits - before.Hits
		r.MemoMiss = s.Misses - before.Misses
	}, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Check(goal, env); err != nil {
				b.Fatal(err)
			}
		}
	}))
	proof.SetMemoEnabled(false)
	addChain(benchRow("check/nomemo", nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Check(goal, env); err != nil {
				b.Fatal(err)
			}
		}
	}))
	proof.SetMemoEnabled(true)
	addChain(benchRow("check/textref", nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := proof.CheckStructural(pf, goal, env); err != nil {
				b.Fatal(err)
			}
		}
	}))
	addChain(benchRow("compile", nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := proof.Compile(pf); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Subproof-carrying proof: what the memo exists for.
	hyp := nal.MustParse("a")
	sub := []proof.Step{{Rule: proof.RuleTrueI, F: nal.TrueF{}}}
	cur := nal.Formula(nal.And{L: hyp, R: nal.TrueF{}})
	sub = append(sub, proof.Step{Rule: proof.RuleAndI, Premises: []int{-1, 0}, F: cur})
	for i := 0; i < 62; i++ {
		cur = nal.And{L: hyp, R: cur}
		sub = append(sub, proof.Step{Rule: proof.RuleAndI, Premises: []int{-1, len(sub) - 1}, F: cur})
	}
	sgoal := nal.Formula(nal.Implies{L: hyp, R: cur})
	spf := &proof.Proof{Steps: []proof.Step{{
		Rule: proof.RuleImpI, F: sgoal,
		Sub: []proof.Subproof{{Hyp: hyp, Steps: sub}},
	}}}
	sc, err := spf.Compiled()
	if err != nil {
		return err
	}
	senv := &proof.Env{}
	rows = append(rows, benchRow("subframe/memo", func(r *proofRow) { r.ProofLen = spf.Len() },
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sc.Check(sgoal, senv); err != nil {
					b.Fatal(err)
				}
			}
		}))
	proof.SetMemoEnabled(false)
	rows = append(rows, benchRow("subframe/nomemo", func(r *proofRow) { r.ProofLen = spf.Len() },
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sc.Check(sgoal, senv); err != nil {
					b.Fatal(err)
				}
			}
		}))
	proof.SetMemoEnabled(true)

	fmt.Printf("%-16s %12s %10s %10s\n", "path", "ns/op", "allocs/op", "B/op")
	for _, r := range rows {
		fmt.Printf("%-16s %12.0f %10d %10d\n", r.Name, r.NsPerOp, r.AllocsOp, r.BytesOp)
	}

	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_proof.json", append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_proof.json")
	return nil
}

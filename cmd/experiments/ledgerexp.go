package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ledger"
)

// ledgerExp measures the durable audit ledger and records the results in
// BENCH_ledger.json. Rows:
//
//	append/mem       one decision into the in-memory backend (amortized
//	                 Merkle seal every 256 records)
//	append/wal       the same append against the file WAL, fsync batched
//	anchor/seal      sealing one 256-record batch: Merkle root + anchor
//	                 hash over the running chain
//	prove            building an inclusion proof for an anchored record
//	verify           checking a proof offline against its batch anchor
//	replay/wal       recovering a 10k-record WAL from disk into a live
//	                 ledger (cost of a reboot)
//
// The prove/verify rows are the offline-auditor path: no kernel, no
// backend, just the anchored batches and the proof.
type ledgerRow struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	AllocsOp  int64   `json:"allocs_per_op"`
	BytesOp   int64   `json:"bytes_per_op"`
	Iteration int     `json:"iterations"`
}

func ledgerBenchRow(name string, body func(b *testing.B)) ledgerRow {
	r := testing.Benchmark(body)
	return ledgerRow{
		Name:      name,
		NsPerOp:   float64(r.NsPerOp()),
		AllocsOp:  r.AllocsPerOp(),
		BytesOp:   r.AllocedBytesPerOp(),
		Iteration: r.N,
	}
}

// ledgerRec builds the fixed-shape decision record used across rows.
func ledgerRec(seq uint64) ledger.Record {
	r := ledger.Record{
		Seq:    seq,
		Subj:   "ipd:12",
		Op:     "read",
		Obj:    "file:/bench",
		Allow:  true,
		Reason: "cache",
	}
	r.ChainHash[0] = byte(seq)
	r.ChainHash[8] = byte(seq >> 8)
	return r
}

func ledgerExp() error {
	var rows []ledgerRow

	// Both append rows bound the per-ledger corpus: the ledger retains
	// every record for proof service, so an unbounded benchmark loop would
	// measure GC scanning of an ever-growing heap, not the append path.
	const appendWindow = 1 << 16

	rows = append(rows, ledgerBenchRow("append/mem", func(b *testing.B) {
		l, err := ledger.New(ledger.NewMemBackend(), ledger.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%appendWindow == 0 && i > 0 {
				b.StopTimer()
				if l, err = ledger.New(ledger.NewMemBackend(), ledger.Options{}); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			if err := l.Append(ledgerRec(uint64(i % appendWindow))); err != nil {
				b.Fatal(err)
			}
		}
	}))

	dir, err := os.MkdirTemp("", "nexus-ledgerexp")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	rows = append(rows, ledgerBenchRow("append/wal", func(b *testing.B) {
		gen := 0
		open := func() (*ledger.WAL, *ledger.Ledger) {
			gen++
			w, err := ledger.OpenWAL(filepath.Join(dir, fmt.Sprintf("bench-%d-%d.wal", b.N, gen)))
			if err != nil {
				b.Fatal(err)
			}
			l, err := ledger.New(w, ledger.Options{})
			if err != nil {
				b.Fatal(err)
			}
			return w, l
		}
		w, l := open()
		defer func() { w.Close() }()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%appendWindow == 0 && i > 0 {
				b.StopTimer()
				w.Close()
				w, l = open()
				b.StartTimer()
			}
			if err := l.Append(ledgerRec(uint64(i % appendWindow))); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Seal cost: one Merkle root + anchor per 256-record batch, isolated by
	// pre-staging pending records off the clock.
	rows = append(rows, ledgerBenchRow("anchor/seal", func(b *testing.B) {
		const batch = 256
		const window = 64 // batches per ledger; bounds retained heap
		l, err := ledger.New(ledger.NewMemBackend(), ledger.Options{BatchSize: batch})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if i%window == 0 && i > 0 {
				if l, err = ledger.New(ledger.NewMemBackend(), ledger.Options{BatchSize: batch}); err != nil {
					b.Fatal(err)
				}
			}
			base := uint64(i%window) * batch
			for j := 0; j < batch-1; j++ {
				if err := l.Append(ledgerRec(base + uint64(j))); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			// The batch-completing append triggers the seal.
			if err := l.Append(ledgerRec(base + batch - 1)); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Anchored corpus for the offline-auditor rows.
	const corpus = 10000
	lc, err := ledger.New(ledger.NewMemBackend(), ledger.Options{BatchSize: 256})
	if err != nil {
		return err
	}
	for i := 0; i < corpus; i++ {
		if err := lc.Append(ledgerRec(uint64(i))); err != nil {
			return err
		}
	}
	if err := lc.Flush(); err != nil {
		return err
	}

	rows = append(rows, ledgerBenchRow("prove", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lc.Prove(uint64(i % corpus)); err != nil {
				b.Fatal(err)
			}
		}
	}))

	rec, _ := lc.Record(corpus / 2)
	pf, err := lc.Prove(corpus / 2)
	if err != nil {
		return err
	}
	rows = append(rows, ledgerBenchRow("verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ledger.VerifyInclusion(&rec, pf); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Reboot cost: replay a 10k-record WAL from disk into a live ledger.
	replayPath := filepath.Join(dir, "replay.wal")
	{
		w, err := ledger.OpenWAL(replayPath)
		if err != nil {
			return err
		}
		l, err := ledger.New(w, ledger.Options{BatchSize: 256})
		if err != nil {
			return err
		}
		for i := 0; i < corpus; i++ {
			if err := l.Append(ledgerRec(uint64(i))); err != nil {
				return err
			}
		}
		if err := l.Flush(); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	rows = append(rows, ledgerBenchRow("replay/wal-10k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w, err := ledger.OpenWAL(replayPath)
			if err != nil {
				b.Fatal(err)
			}
			l, err := ledger.New(w, ledger.Options{BatchSize: 256})
			if err != nil {
				b.Fatal(err)
			}
			if s := l.Stats(); s.Records != corpus {
				b.Fatalf("replay recovered %d records, want %d", s.Records, corpus)
			}
			w.Close()
		}
	}))

	fmt.Printf("%-16s %12s %10s %10s\n", "path", "ns/op", "allocs/op", "B/op")
	for _, r := range rows {
		fmt.Printf("%-16s %12.0f %10d %10d\n", r.Name, r.NsPerOp, r.AllocsOp, r.BytesOp)
	}

	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_ledger.json", append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_ledger.json")
	return nil
}

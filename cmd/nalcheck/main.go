// Command nalcheck parses NAL formulas and checks NAL proofs from the
// command line — the guard's proof checker exposed as a tool.
//
// Usage:
//
//	nalcheck formula '<formula>'
//	nalcheck proof -goal '<formula>' [-cred '<formula>']... [proof-file]
//	nalcheck derive -goal '<formula>' [-cred '<formula>']...
//
// With no proof file, the proof is read from standard input in the textual
// exchange format (see the proof package documentation).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/nal"
	"repro/internal/nal/proof"
)

type credList []nal.Formula

func (c *credList) String() string { return fmt.Sprint(*c) }

func (c *credList) Set(s string) error {
	f, err := nal.Parse(s)
	if err != nil {
		return err
	}
	*c = append(*c, f)
	return nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "formula":
		if len(os.Args) != 3 {
			usage()
		}
		f, err := nal.Parse(os.Args[2])
		if err != nil {
			fatal(err)
		}
		fmt.Println(f)
		for _, v := range nal.Vars(f) {
			fmt.Printf("guard variable: %s\n", v)
		}
	case "proof", "derive":
		fs := flag.NewFlagSet(os.Args[1], flag.ExitOnError)
		goalSrc := fs.String("goal", "", "goal formula")
		var creds credList
		fs.Var(&creds, "cred", "credential formula (repeatable)")
		trust := fs.String("trust", "", "trust-root principal")
		fs.Parse(os.Args[2:])
		if *goalSrc == "" {
			fatal(fmt.Errorf("-goal is required"))
		}
		goal, err := nal.Parse(*goalSrc)
		if err != nil {
			fatal(fmt.Errorf("goal: %w", err))
		}
		var roots []nal.Principal
		if *trust != "" {
			p, err := nal.ParsePrincipal(*trust)
			if err != nil {
				fatal(fmt.Errorf("trust root: %w", err))
			}
			roots = append(roots, p)
		}
		if os.Args[1] == "derive" {
			d := &proof.Deriver{Creds: creds, TrustRoots: roots}
			p, err := d.Derive(goal)
			if err != nil {
				fatal(err)
			}
			fmt.Print(p)
			return
		}
		var src []byte
		if fs.NArg() > 0 {
			src, err = os.ReadFile(fs.Arg(0))
		} else {
			src, err = io.ReadAll(os.Stdin)
		}
		if err != nil {
			fatal(err)
		}
		p, err := proof.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		res, err := proof.Check(p, goal, &proof.Env{Credentials: creds, TrustRoots: roots})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("proof OK: %d steps, cacheable=%v\n", res.Steps, res.Cacheable)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: nalcheck formula '<formula>'")
	fmt.Fprintln(os.Stderr, "       nalcheck proof  -goal '<f>' [-cred '<f>']... [-trust '<p>'] [file]")
	fmt.Fprintln(os.Stderr, "       nalcheck derive -goal '<f>' [-cred '<f>']... [-trust '<p>']")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nalcheck:", err)
	os.Exit(1)
}

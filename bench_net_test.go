// Benchmarks for the distributed attestation plane: cross-node calls over
// the loopback transport versus the same call made locally, and the wire
// codec's warm-decode path. BenchmarkWireDecodeWarm is the acceptance
// exhibit for the codec — decoding an already-seen formula must be an
// intern lookup with zero allocations.
package nexus

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/nal"
)

// netWorld wires two kernels over the loopback transport: an echo service
// on the serving kernel (no goal: warm default-allow decisions) reachable
// both locally (srv's own channel) and remotely (cli's session on the
// dialing kernel).
func netWorld(b *testing.B) (local *kernel.Session, localCap kernel.Cap, remote *kernel.Session, remoteCap kernel.Cap) {
	b.Helper()
	kStore := benchKernel(b, kernel.Options{})
	kFront := benchKernel(b, kernel.Options{})

	srv, err := kStore.NewSession([]byte("net-srv"))
	if err != nil {
		b.Fatal(err)
	}
	pc, err := srv.Listen(func(kernel.Caller, *kernel.Msg) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil {
		b.Fatal(err)
	}
	port, _ := srv.PortOf(pc)

	lt := kernel.NewLoopbackTransport()
	nStore := kernel.NewNode(kStore)
	l, err := lt.Listen("bench")
	if err != nil {
		b.Fatal(err)
	}
	nStore.Serve(l)
	if err := nStore.Export("echo", port); err != nil {
		b.Fatal(err)
	}
	nFront := kernel.NewNode(kFront)
	peer, err := nFront.Dial(lt, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		nFront.Close()
		nStore.Close()
	})

	cli, err := kFront.NewSession([]byte("net-cli"))
	if err != nil {
		b.Fatal(err)
	}
	rc, err := cli.Connect(peer, "echo")
	if err != nil {
		b.Fatal(err)
	}
	return srv, pc, cli, rc
}

// BenchmarkNetLocalCall is the single-node baseline the remote path is
// compared against.
func BenchmarkNetLocalCall(b *testing.B) {
	local, lc, _, _ := netWorld(b)
	m := &kernel.Msg{Op: "read", Obj: "obj"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := local.Call(lc, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetRemoteCall crosses the loopback transport: both kernels'
// dispatch pipelines plus framing, scheduling, and the channel hop.
func BenchmarkNetRemoteCall(b *testing.B) {
	_, _, remote, rc := netWorld(b)
	m := &kernel.Msg{Op: "read", Obj: "obj"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := remote.CallRemote(rc, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetConnChurn measures one full connection lifetime: dial (the
// attested handshake — two Ed25519 signatures, an X25519 exchange — plus
// scheduler registration) and close. The event-driven runtime makes this
// the only per-connection cost; an established idle connection holds no
// goroutine.
func BenchmarkNetConnChurn(b *testing.B) {
	kStore := benchKernel(b, kernel.Options{})
	kFront := benchKernel(b, kernel.Options{})
	lt := kernel.NewLoopbackTransport()
	nStore := kernel.NewNode(kStore)
	l, err := lt.Listen("churn")
	if err != nil {
		b.Fatal(err)
	}
	nStore.Serve(l)
	nFront := kernel.NewNode(kFront)
	b.Cleanup(func() {
		nFront.Close()
		nStore.Close()
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := nFront.Dial(lt, "churn")
		if err != nil {
			b.Fatal(err)
		}
		p.Close()
	}
}

// benchWireFormula is a credential-shaped formula: a keyed speaker chain
// over a predicate, the kind that crosses nodes in proofs.
func benchWireFormula(b *testing.B) nal.Formula {
	b.Helper()
	f, err := nal.Parse(`key:deadbeef.boot77.ipd.12 says mayArchive(walls, "alice", 42)`)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkWireDecodeWarm: ingress decode of an already-seen formula is an
// intern lookup — zero allocations (also pinned by
// TestWireWarmDecodeZeroAlloc in internal/nal).
func BenchmarkWireDecodeWarm(b *testing.B) {
	f := benchWireFormula(b)
	enc := nal.NewWireEncoder()
	cold, err := enc.AppendFormula(nil, f)
	if err != nil {
		b.Fatal(err)
	}
	warm, err := enc.AppendFormula(nil, f)
	if err != nil {
		b.Fatal(err)
	}
	dec := nal.NewWireDecoder()
	if _, _, err := dec.DecodeFormula(cold); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dec.DecodeFormula(warm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireDecodeCold measures first-presentation decode (definitions
// interned through the cons table) with fresh per-connection state.
func BenchmarkWireDecodeCold(b *testing.B) {
	f := benchWireFormula(b)
	buf, err := nal.NewWireEncoder().AppendFormula(nil, f)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := nal.NewWireDecoder()
		if _, _, err := dec.DecodeFormula(buf); err != nil {
			b.Fatal(err)
		}
	}
}
